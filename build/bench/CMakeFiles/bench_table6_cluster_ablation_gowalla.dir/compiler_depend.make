# Empty compiler generated dependencies file for bench_table6_cluster_ablation_gowalla.
# This may be replaced when dependencies are built.
