file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_cluster_ablation_gowalla.dir/bench_table6_cluster_ablation_gowalla.cc.o"
  "CMakeFiles/bench_table6_cluster_ablation_gowalla.dir/bench_table6_cluster_ablation_gowalla.cc.o.d"
  "bench_table6_cluster_ablation_gowalla"
  "bench_table6_cluster_ablation_gowalla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_cluster_ablation_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
