file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_validtime_gowalla.dir/bench_fig11_validtime_gowalla.cc.o"
  "CMakeFiles/bench_fig11_validtime_gowalla.dir/bench_fig11_validtime_gowalla.cc.o.d"
  "bench_fig11_validtime_gowalla"
  "bench_fig11_validtime_gowalla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_validtime_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
