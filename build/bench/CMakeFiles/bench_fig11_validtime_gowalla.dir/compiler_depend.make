# Empty compiler generated dependencies file for bench_fig11_validtime_gowalla.
# This may be replaced when dependencies are built.
