file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_detour_gowalla.dir/bench_fig9_detour_gowalla.cc.o"
  "CMakeFiles/bench_fig9_detour_gowalla.dir/bench_fig9_detour_gowalla.cc.o.d"
  "bench_fig9_detour_gowalla"
  "bench_fig9_detour_gowalla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_detour_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
