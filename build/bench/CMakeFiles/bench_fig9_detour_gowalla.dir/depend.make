# Empty dependencies file for bench_fig9_detour_gowalla.
# This may be replaced when dependencies are built.
