# Empty compiler generated dependencies file for bench_fig10_tasks_gowalla.
# This may be replaced when dependencies are built.
