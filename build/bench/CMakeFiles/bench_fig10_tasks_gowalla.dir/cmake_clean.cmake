file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tasks_gowalla.dir/bench_fig10_tasks_gowalla.cc.o"
  "CMakeFiles/bench_fig10_tasks_gowalla.dir/bench_fig10_tasks_gowalla.cc.o.d"
  "bench_fig10_tasks_gowalla"
  "bench_fig10_tasks_gowalla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tasks_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
