file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_seqlen_porto.dir/bench_table5_seqlen_porto.cc.o"
  "CMakeFiles/bench_table5_seqlen_porto.dir/bench_table5_seqlen_porto.cc.o.d"
  "bench_table5_seqlen_porto"
  "bench_table5_seqlen_porto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_seqlen_porto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
