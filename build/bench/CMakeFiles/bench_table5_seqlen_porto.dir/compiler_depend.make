# Empty compiler generated dependencies file for bench_table5_seqlen_porto.
# This may be replaced when dependencies are built.
