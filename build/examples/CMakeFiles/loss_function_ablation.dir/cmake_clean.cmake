file(REMOVE_RECURSE
  "CMakeFiles/loss_function_ablation.dir/loss_function_ablation.cpp.o"
  "CMakeFiles/loss_function_ablation.dir/loss_function_ablation.cpp.o.d"
  "loss_function_ablation"
  "loss_function_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_function_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
