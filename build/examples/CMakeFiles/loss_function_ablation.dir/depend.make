# Empty dependencies file for loss_function_ablation.
# This may be replaced when dependencies are built.
