file(REMOVE_RECURSE
  "CMakeFiles/ride_hailing_day.dir/ride_hailing_day.cpp.o"
  "CMakeFiles/ride_hailing_day.dir/ride_hailing_day.cpp.o.d"
  "ride_hailing_day"
  "ride_hailing_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ride_hailing_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
