file(REMOVE_RECURSE
  "CMakeFiles/newcomer_onboarding.dir/newcomer_onboarding.cpp.o"
  "CMakeFiles/newcomer_onboarding.dir/newcomer_onboarding.cpp.o.d"
  "newcomer_onboarding"
  "newcomer_onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newcomer_onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
