# Empty dependencies file for newcomer_onboarding.
# This may be replaced when dependencies are built.
