# Empty compiler generated dependencies file for tamp_similarity.
# This may be replaced when dependencies are built.
