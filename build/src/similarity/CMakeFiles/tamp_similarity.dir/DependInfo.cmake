
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/cluster_quality.cc" "src/similarity/CMakeFiles/tamp_similarity.dir/cluster_quality.cc.o" "gcc" "src/similarity/CMakeFiles/tamp_similarity.dir/cluster_quality.cc.o.d"
  "/root/repo/src/similarity/kernel.cc" "src/similarity/CMakeFiles/tamp_similarity.dir/kernel.cc.o" "gcc" "src/similarity/CMakeFiles/tamp_similarity.dir/kernel.cc.o.d"
  "/root/repo/src/similarity/learning_path.cc" "src/similarity/CMakeFiles/tamp_similarity.dir/learning_path.cc.o" "gcc" "src/similarity/CMakeFiles/tamp_similarity.dir/learning_path.cc.o.d"
  "/root/repo/src/similarity/wasserstein.cc" "src/similarity/CMakeFiles/tamp_similarity.dir/wasserstein.cc.o" "gcc" "src/similarity/CMakeFiles/tamp_similarity.dir/wasserstein.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/tamp_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
