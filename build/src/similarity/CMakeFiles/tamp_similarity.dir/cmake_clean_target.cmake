file(REMOVE_RECURSE
  "libtamp_similarity.a"
)
