file(REMOVE_RECURSE
  "CMakeFiles/tamp_similarity.dir/cluster_quality.cc.o"
  "CMakeFiles/tamp_similarity.dir/cluster_quality.cc.o.d"
  "CMakeFiles/tamp_similarity.dir/kernel.cc.o"
  "CMakeFiles/tamp_similarity.dir/kernel.cc.o.d"
  "CMakeFiles/tamp_similarity.dir/learning_path.cc.o"
  "CMakeFiles/tamp_similarity.dir/learning_path.cc.o.d"
  "CMakeFiles/tamp_similarity.dir/wasserstein.cc.o"
  "CMakeFiles/tamp_similarity.dir/wasserstein.cc.o.d"
  "libtamp_similarity.a"
  "libtamp_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
