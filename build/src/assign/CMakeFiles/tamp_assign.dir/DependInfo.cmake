
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/bounds.cc" "src/assign/CMakeFiles/tamp_assign.dir/bounds.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/bounds.cc.o.d"
  "/root/repo/src/assign/candidates.cc" "src/assign/CMakeFiles/tamp_assign.dir/candidates.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/candidates.cc.o.d"
  "/root/repo/src/assign/ggpso.cc" "src/assign/CMakeFiles/tamp_assign.dir/ggpso.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/ggpso.cc.o.d"
  "/root/repo/src/assign/km_assigner.cc" "src/assign/CMakeFiles/tamp_assign.dir/km_assigner.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/km_assigner.cc.o.d"
  "/root/repo/src/assign/matching_rate.cc" "src/assign/CMakeFiles/tamp_assign.dir/matching_rate.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/matching_rate.cc.o.d"
  "/root/repo/src/assign/ppi.cc" "src/assign/CMakeFiles/tamp_assign.dir/ppi.cc.o" "gcc" "src/assign/CMakeFiles/tamp_assign.dir/ppi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/tamp_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
