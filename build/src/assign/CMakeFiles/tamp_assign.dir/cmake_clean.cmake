file(REMOVE_RECURSE
  "CMakeFiles/tamp_assign.dir/bounds.cc.o"
  "CMakeFiles/tamp_assign.dir/bounds.cc.o.d"
  "CMakeFiles/tamp_assign.dir/candidates.cc.o"
  "CMakeFiles/tamp_assign.dir/candidates.cc.o.d"
  "CMakeFiles/tamp_assign.dir/ggpso.cc.o"
  "CMakeFiles/tamp_assign.dir/ggpso.cc.o.d"
  "CMakeFiles/tamp_assign.dir/km_assigner.cc.o"
  "CMakeFiles/tamp_assign.dir/km_assigner.cc.o.d"
  "CMakeFiles/tamp_assign.dir/matching_rate.cc.o"
  "CMakeFiles/tamp_assign.dir/matching_rate.cc.o.d"
  "CMakeFiles/tamp_assign.dir/ppi.cc.o"
  "CMakeFiles/tamp_assign.dir/ppi.cc.o.d"
  "libtamp_assign.a"
  "libtamp_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
