file(REMOVE_RECURSE
  "libtamp_assign.a"
)
