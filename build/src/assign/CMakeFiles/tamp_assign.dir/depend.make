# Empty dependencies file for tamp_assign.
# This may be replaced when dependencies are built.
