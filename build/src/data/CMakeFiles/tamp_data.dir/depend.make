# Empty dependencies file for tamp_data.
# This may be replaced when dependencies are built.
