file(REMOVE_RECURSE
  "libtamp_data.a"
)
