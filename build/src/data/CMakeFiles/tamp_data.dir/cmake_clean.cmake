file(REMOVE_RECURSE
  "CMakeFiles/tamp_data.dir/mobility.cc.o"
  "CMakeFiles/tamp_data.dir/mobility.cc.o.d"
  "CMakeFiles/tamp_data.dir/tasks.cc.o"
  "CMakeFiles/tamp_data.dir/tasks.cc.o.d"
  "CMakeFiles/tamp_data.dir/workload.cc.o"
  "CMakeFiles/tamp_data.dir/workload.cc.o.d"
  "libtamp_data.a"
  "libtamp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
