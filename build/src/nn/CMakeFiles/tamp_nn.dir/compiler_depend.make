# Empty compiler generated dependencies file for tamp_nn.
# This may be replaced when dependencies are built.
