file(REMOVE_RECURSE
  "CMakeFiles/tamp_nn.dir/encoder_decoder.cc.o"
  "CMakeFiles/tamp_nn.dir/encoder_decoder.cc.o.d"
  "CMakeFiles/tamp_nn.dir/gru_cell.cc.o"
  "CMakeFiles/tamp_nn.dir/gru_cell.cc.o.d"
  "CMakeFiles/tamp_nn.dir/init.cc.o"
  "CMakeFiles/tamp_nn.dir/init.cc.o.d"
  "CMakeFiles/tamp_nn.dir/linear.cc.o"
  "CMakeFiles/tamp_nn.dir/linear.cc.o.d"
  "CMakeFiles/tamp_nn.dir/loss.cc.o"
  "CMakeFiles/tamp_nn.dir/loss.cc.o.d"
  "CMakeFiles/tamp_nn.dir/lstm_cell.cc.o"
  "CMakeFiles/tamp_nn.dir/lstm_cell.cc.o.d"
  "CMakeFiles/tamp_nn.dir/optimizer.cc.o"
  "CMakeFiles/tamp_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/tamp_nn.dir/serialization.cc.o"
  "CMakeFiles/tamp_nn.dir/serialization.cc.o.d"
  "libtamp_nn.a"
  "libtamp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
