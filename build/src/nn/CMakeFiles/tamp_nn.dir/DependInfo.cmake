
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/encoder_decoder.cc" "src/nn/CMakeFiles/tamp_nn.dir/encoder_decoder.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/encoder_decoder.cc.o.d"
  "/root/repo/src/nn/gru_cell.cc" "src/nn/CMakeFiles/tamp_nn.dir/gru_cell.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/gru_cell.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/tamp_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/tamp_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/tamp_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm_cell.cc" "src/nn/CMakeFiles/tamp_nn.dir/lstm_cell.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/lstm_cell.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/tamp_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/tamp_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/tamp_nn.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
