file(REMOVE_RECURSE
  "libtamp_nn.a"
)
