file(REMOVE_RECURSE
  "CMakeFiles/tamp_cluster.dir/game_clustering.cc.o"
  "CMakeFiles/tamp_cluster.dir/game_clustering.cc.o.d"
  "CMakeFiles/tamp_cluster.dir/kmeans.cc.o"
  "CMakeFiles/tamp_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/tamp_cluster.dir/kmedoids.cc.o"
  "CMakeFiles/tamp_cluster.dir/kmedoids.cc.o.d"
  "CMakeFiles/tamp_cluster.dir/task_tree.cc.o"
  "CMakeFiles/tamp_cluster.dir/task_tree.cc.o.d"
  "libtamp_cluster.a"
  "libtamp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
