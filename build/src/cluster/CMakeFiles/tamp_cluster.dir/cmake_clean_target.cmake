file(REMOVE_RECURSE
  "libtamp_cluster.a"
)
