
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/game_clustering.cc" "src/cluster/CMakeFiles/tamp_cluster.dir/game_clustering.cc.o" "gcc" "src/cluster/CMakeFiles/tamp_cluster.dir/game_clustering.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/tamp_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/tamp_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/kmedoids.cc" "src/cluster/CMakeFiles/tamp_cluster.dir/kmedoids.cc.o" "gcc" "src/cluster/CMakeFiles/tamp_cluster.dir/kmedoids.cc.o.d"
  "/root/repo/src/cluster/task_tree.cc" "src/cluster/CMakeFiles/tamp_cluster.dir/task_tree.cc.o" "gcc" "src/cluster/CMakeFiles/tamp_cluster.dir/task_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/tamp_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/tamp_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
