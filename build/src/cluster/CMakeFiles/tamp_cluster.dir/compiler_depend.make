# Empty compiler generated dependencies file for tamp_cluster.
# This may be replaced when dependencies are built.
