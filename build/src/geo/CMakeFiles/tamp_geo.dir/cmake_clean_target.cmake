file(REMOVE_RECURSE
  "libtamp_geo.a"
)
