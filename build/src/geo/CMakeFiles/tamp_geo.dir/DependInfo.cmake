
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/grid.cc" "src/geo/CMakeFiles/tamp_geo.dir/grid.cc.o" "gcc" "src/geo/CMakeFiles/tamp_geo.dir/grid.cc.o.d"
  "/root/repo/src/geo/spatial_index.cc" "src/geo/CMakeFiles/tamp_geo.dir/spatial_index.cc.o" "gcc" "src/geo/CMakeFiles/tamp_geo.dir/spatial_index.cc.o.d"
  "/root/repo/src/geo/trajectory.cc" "src/geo/CMakeFiles/tamp_geo.dir/trajectory.cc.o" "gcc" "src/geo/CMakeFiles/tamp_geo.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
