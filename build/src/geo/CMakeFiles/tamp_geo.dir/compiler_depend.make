# Empty compiler generated dependencies file for tamp_geo.
# This may be replaced when dependencies are built.
