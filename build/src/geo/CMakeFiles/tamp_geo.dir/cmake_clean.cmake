file(REMOVE_RECURSE
  "CMakeFiles/tamp_geo.dir/grid.cc.o"
  "CMakeFiles/tamp_geo.dir/grid.cc.o.d"
  "CMakeFiles/tamp_geo.dir/spatial_index.cc.o"
  "CMakeFiles/tamp_geo.dir/spatial_index.cc.o.d"
  "CMakeFiles/tamp_geo.dir/trajectory.cc.o"
  "CMakeFiles/tamp_geo.dir/trajectory.cc.o.d"
  "libtamp_geo.a"
  "libtamp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
