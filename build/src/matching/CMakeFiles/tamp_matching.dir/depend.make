# Empty dependencies file for tamp_matching.
# This may be replaced when dependencies are built.
