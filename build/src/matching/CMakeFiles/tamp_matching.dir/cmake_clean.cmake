file(REMOVE_RECURSE
  "CMakeFiles/tamp_matching.dir/hungarian.cc.o"
  "CMakeFiles/tamp_matching.dir/hungarian.cc.o.d"
  "libtamp_matching.a"
  "libtamp_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
