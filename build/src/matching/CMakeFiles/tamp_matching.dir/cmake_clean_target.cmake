file(REMOVE_RECURSE
  "libtamp_matching.a"
)
