file(REMOVE_RECURSE
  "CMakeFiles/tamp_core.dir/pipeline.cc.o"
  "CMakeFiles/tamp_core.dir/pipeline.cc.o.d"
  "CMakeFiles/tamp_core.dir/rollout.cc.o"
  "CMakeFiles/tamp_core.dir/rollout.cc.o.d"
  "CMakeFiles/tamp_core.dir/simulator.cc.o"
  "CMakeFiles/tamp_core.dir/simulator.cc.o.d"
  "CMakeFiles/tamp_core.dir/ta_loss.cc.o"
  "CMakeFiles/tamp_core.dir/ta_loss.cc.o.d"
  "libtamp_core.a"
  "libtamp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
