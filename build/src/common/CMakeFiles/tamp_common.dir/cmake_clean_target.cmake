file(REMOVE_RECURSE
  "libtamp_common.a"
)
