# Empty dependencies file for tamp_common.
# This may be replaced when dependencies are built.
