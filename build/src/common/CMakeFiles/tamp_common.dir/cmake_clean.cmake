file(REMOVE_RECURSE
  "CMakeFiles/tamp_common.dir/rng.cc.o"
  "CMakeFiles/tamp_common.dir/rng.cc.o.d"
  "CMakeFiles/tamp_common.dir/statistics.cc.o"
  "CMakeFiles/tamp_common.dir/statistics.cc.o.d"
  "CMakeFiles/tamp_common.dir/status.cc.o"
  "CMakeFiles/tamp_common.dir/status.cc.o.d"
  "CMakeFiles/tamp_common.dir/table_printer.cc.o"
  "CMakeFiles/tamp_common.dir/table_printer.cc.o.d"
  "libtamp_common.a"
  "libtamp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
