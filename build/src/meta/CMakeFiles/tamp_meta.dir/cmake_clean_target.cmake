file(REMOVE_RECURSE
  "libtamp_meta.a"
)
