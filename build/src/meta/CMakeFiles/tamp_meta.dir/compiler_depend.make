# Empty compiler generated dependencies file for tamp_meta.
# This may be replaced when dependencies are built.
