
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/meta_training.cc" "src/meta/CMakeFiles/tamp_meta.dir/meta_training.cc.o" "gcc" "src/meta/CMakeFiles/tamp_meta.dir/meta_training.cc.o.d"
  "/root/repo/src/meta/taml.cc" "src/meta/CMakeFiles/tamp_meta.dir/taml.cc.o" "gcc" "src/meta/CMakeFiles/tamp_meta.dir/taml.cc.o.d"
  "/root/repo/src/meta/trainer.cc" "src/meta/CMakeFiles/tamp_meta.dir/trainer.cc.o" "gcc" "src/meta/CMakeFiles/tamp_meta.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tamp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/tamp_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tamp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/tamp_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
