file(REMOVE_RECURSE
  "CMakeFiles/tamp_meta.dir/meta_training.cc.o"
  "CMakeFiles/tamp_meta.dir/meta_training.cc.o.d"
  "CMakeFiles/tamp_meta.dir/taml.cc.o"
  "CMakeFiles/tamp_meta.dir/taml.cc.o.d"
  "CMakeFiles/tamp_meta.dir/trainer.cc.o"
  "CMakeFiles/tamp_meta.dir/trainer.cc.o.d"
  "libtamp_meta.a"
  "libtamp_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
