// Micro-benchmarks of batch candidate generation: the dense T x W sweep
// vs the CandidateIndex-pruned path that PPI/KM/GGPSO share, plus the
// per-batch index build itself. RegisterMicroMetrics records the
// deterministic work counts (evaluations, pruned pairs, reduction factor)
// that tools/bench_compare gates on.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "data/workload.h"
#include "micro_main.h"

namespace {

using tamp::assign::CandidateGenStats;
using tamp::assign::CandidateIndex;
using tamp::assign::GenerateCandidates;

constexpr double kMatchRadiusKm = 1.0;

/// One mid-horizon Porto batch at paper-like density. Workers' predicted
/// routines are sampled from their real test trajectories (the NN
/// forecaster is out of scope for this micro target).
struct Batch {
  std::vector<tamp::assign::SpatialTask> tasks;
  std::vector<tamp::assign::CandidateWorker> workers;
  double now = 0.0;
};

/// Benchmarks sweep the worker-fleet size. With workers uniform over the
/// city, the pruned fraction is set by the prune-radius-to-area ratio and
/// is roughly scale-free, so both paths grow linearly in W and indexed
/// wins by a constant factor; the sweep shows that factor holds as the
/// per-batch index build amortizes.
constexpr int kWorkerSizes[] = {60, 240, 960};

const Batch& PortoBatch(int num_workers) {
  static std::map<int, Batch> cache;
  auto it = cache.find(num_workers);
  if (it != cache.end()) return it->second;

  tamp::data::WorkloadConfig config;
  config.kind = tamp::data::WorkloadKind::kPortoDidi;
  config.num_workers = num_workers;
  config.num_train_days = 1;
  config.num_tasks = 3000;
  config.num_historical_tasks = 50;
  config.seed = 20250707;
  tamp::data::Workload workload = tamp::data::GenerateWorkload(config);

  Batch b;
  b.now = workload.task_stream[workload.task_stream.size() / 2]
              .release_time_min;
  // Everything alive at `now` plus the following two hours of releases: a
  // backlog-scale batch (a few hundred tasks), the regime the fig-7
  // task-count sweeps stress.
  for (const tamp::assign::SpatialTask& task : workload.task_stream) {
    if (task.release_time_min <= b.now + 120.0 && task.deadline_min > b.now) {
      b.tasks.push_back(task);
    }
  }
  for (size_t w = 0; w < workload.workers.size(); ++w) {
    const tamp::data::WorkerRecord& record = workload.workers[w];
    tamp::assign::CandidateWorker cw;
    cw.id = record.id;
    for (int s = 1; s <= 5; ++s) {
      const double t = b.now + 10.0 * s;
      cw.predicted.push_back({record.test.PositionAt(t), t});
    }
    cw.current_location = record.test.PositionAt(b.now);
    cw.detour_budget_km = record.detour_budget_km;
    cw.speed_kmpm = record.speed_kmpm;
    cw.matching_rate =
        0.2 + 0.6 * static_cast<double>(w) /
                  static_cast<double>(workload.workers.size());
    b.workers.push_back(std::move(cw));
  }
  return cache.emplace(num_workers, std::move(b)).first->second;
}

void BM_CandidateIndexBuild(benchmark::State& state) {
  const Batch& batch = PortoBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CandidateIndex index(batch.workers);
    benchmark::DoNotOptimize(index.num_points());
  }
}
BENCHMARK(BM_CandidateIndexBuild)->Arg(60)->Arg(240)->Arg(960);

void BM_GenerateCandidatesDense(benchmark::State& state) {
  const Batch& batch = PortoBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto table = GenerateCandidates(batch.tasks, batch.workers,
                                    kMatchRadiusKm, batch.now, nullptr);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_GenerateCandidatesDense)->Arg(60)->Arg(240)->Arg(960);

void BM_GenerateCandidatesIndexed(benchmark::State& state) {
  const Batch& batch = PortoBatch(static_cast<int>(state.range(0)));
  // Index build amortizes over the batch's queries but is part of the
  // per-batch cost, so it stays inside the timed loop.
  for (auto _ : state) {
    CandidateIndex index(batch.workers);
    auto table = GenerateCandidates(batch.tasks, batch.workers,
                                    kMatchRadiusKm, batch.now, &index);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_GenerateCandidatesIndexed)->Arg(60)->Arg(240)->Arg(960);

}  // namespace

namespace tamp::bench {

void RegisterMicroMetrics(JsonReport& report) {
  for (int num_workers : kWorkerSizes) {
    const Batch& batch = PortoBatch(num_workers);
    CandidateIndex index(batch.workers);
    CandidateGenStats dense, indexed;
    GenerateCandidates(batch.tasks, batch.workers, kMatchRadiusKm, batch.now,
                       nullptr, &dense);
    GenerateCandidates(batch.tasks, batch.workers, kMatchRadiusKm, batch.now,
                       &index, &indexed);
    const std::string prefix =
        "candidates.w" + std::to_string(num_workers) + ".";
    report.AddMetric(prefix + "tasks", static_cast<double>(batch.tasks.size()));
    report.AddMetric(prefix + "index_points",
                     static_cast<double>(index.num_points()));
    report.AddMetric(prefix + "dense_evals",
                     static_cast<double>(dense.evaluated));
    report.AddMetric(prefix + "indexed_evals",
                     static_cast<double>(indexed.evaluated));
    report.AddMetric(prefix + "pruned", static_cast<double>(indexed.pruned));
    report.AddMetric(prefix + "eval_reduction_x",
                     static_cast<double>(dense.evaluated) /
                         static_cast<double>(indexed.evaluated));
  }
}

}  // namespace tamp::bench
