// Reproduces Table V: effect of seq_in and seq_out on MAML, CTML,
// GTTAML-GT, and GTTAML, on the Porto/Didi-like workload.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("table5_seqlen_porto");
  tamp::bench::RunSeqLenSweep(
      tamp::data::WorkloadKind::kPortoDidi,
      "Table V: effect of seq_in / seq_out (Porto-like)");
  return 0;
}
