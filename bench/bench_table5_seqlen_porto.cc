// Reproduces Table V: effect of seq_in and seq_out on MAML, CTML,
// GTTAML-GT, and GTTAML, on the Porto/Didi-like workload.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "table5_seqlen_porto",
      "Table V: effect of seq_in / seq_out (Porto-like)",
      tamp::bench::Experiment::kSeqLenSweep,
      tamp::data::WorkloadKind::kPortoDidi,
      tamp::bench::SweepVar::kDetour,
      {}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
