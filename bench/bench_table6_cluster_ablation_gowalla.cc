// Reproduces Table VI: the clustering algorithm & factor ablation on the
// Gowalla/Foursquare-like workload.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("table6_cluster_ablation_gowalla");
  tamp::bench::RunClusterAblation(
      tamp::data::WorkloadKind::kGowallaFoursquare,
      "Table VI: clustering algorithm & factor ablation (Gowalla-like)");
  return 0;
}
