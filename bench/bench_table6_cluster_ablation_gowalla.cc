// Reproduces Table VI: the clustering algorithm & factor ablation on the
// Gowalla/Foursquare-like workload.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "table6_cluster_ablation_gowalla",
      "Table VI: clustering algorithm & factor ablation (Gowalla-like)",
      tamp::bench::Experiment::kClusterAblation,
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kDetour,
      {}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
