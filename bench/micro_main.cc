// Shared main for the google-benchmark micro targets: runs the registered
// benchmarks with the normal console output, then writes the
// BENCH_<target>.json report (tools/bench_compare input) with
//   - per-benchmark wall-clock under "stages" (advisory `_s` keys), and
//   - the target's deterministic accounting metrics (RegisterMicroMetrics)
//     under "metrics" (strict keys the perf gate fails on).
// The obs snapshot is omitted: counters scale with the auto-chosen
// iteration counts and would not be machine-comparable.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "micro_main.h"

namespace {

/// Forwards to the normal console output and mirrors every per-iteration
/// real time into the JSON report's stages section.
class StageRecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit StageRecordingReporter(tamp::bench::JsonReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      if (run.iterations <= 0) continue;
      report_.AddStage(run.benchmark_name() + "_s",
                       run.real_accumulated_time /
                           static_cast<double>(run.iterations));
    }
  }

 private:
  tamp::bench::JsonReport& report_;
};

std::string TargetFromArgv0(const char* argv0) {
  std::string name(argv0);
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  // bench_micro_matching -> micro_matching (the BENCH_ prefix is re-added
  // by JsonReport).
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the --json-dir flag (JsonReport's concern); everything else
  // goes to google-benchmark.
  std::string json_dir;
  std::vector<char*> bench_args;
  static const std::string kJsonDir = "--json-dir=";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kJsonDir, 0) == 0) {
      json_dir = arg.substr(kJsonDir.size());
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());

  tamp::bench::JsonReport report(TargetFromArgv0(argv[0]), json_dir);
  report.IncludeObs(false);
  StageRecordingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  tamp::bench::RegisterMicroMetrics(report);
  benchmark::Shutdown();
  return 0;
}
