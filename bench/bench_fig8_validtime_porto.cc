// Reproduces Fig. 8 (Appendix C-A): effect of the tasks' valid time
// ([1,2] .. [5,6] time units of 10 minutes), Porto/Didi-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig8_validtime_porto",
      "Fig. 8: effect of task valid time (Porto-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kPortoDidi,
      tamp::bench::SweepVar::kValidTime,
      {1.0, 2.0, 3.0, 4.0, 5.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
