// Reproduces Fig. 8 (Appendix C-A): effect of the tasks' valid time
// ([1,2] .. [5,6] time units of 10 minutes), Porto/Didi-like.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("fig8_validtime_porto");
  tamp::bench::RunAssignmentSweep(
      tamp::data::WorkloadKind::kPortoDidi, tamp::bench::SweepVar::kValidTime,
      {1.0, 2.0, 3.0, 4.0, 5.0},
      "Fig. 8: effect of task valid time (Porto-like)");
  return 0;
}
