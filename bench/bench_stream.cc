// Headline bench of the event-driven simulator core (DESIGN.md §4j):
// replays every (dataset, scenario) workload spec — baseline, surge, and
// churn on Porto and Gowalla — through the event queue with the
// prediction-free LB assigner and reports events/second under load plus
// the deterministic event accounting the bench gate pins.
//
// Methodology: events/second = (total events drained) / (wall-clock of the
// full Run), so the figure prices the whole loop — heap pops, pool and
// session bookkeeping, and the per-trigger assignment work — not just the
// queue. LB keeps the run training-free, so the bench measures the
// simulator, and every reported *count* is a pure function of the workload
// seed (gated against bench/baselines/BENCH_stream.json; the rates and
// seconds are advisory).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/event_sim.h"
#include "nn/encoder_decoder.h"

namespace tamp::bench {
namespace {

struct StreamResult {
  core::EventStats stats;
  core::SimMetrics metrics;
  double seconds = 0.0;
};

StreamResult RunSpec(const data::WorkloadSpec& spec,
                     const core::RunOptions& options) {
  BenchScale scale;
  data::WorkloadConfig workload_config = BaseWorkloadConfig(spec.kind, scale);
  workload_config.scenario = spec.scenario;
  data::Workload workload = data::GenerateWorkload(workload_config);

  nn::Seq2SeqConfig model_config;
  model_config.input_dim = data::kSampleInputDim;
  nn::EncoderDecoder model(model_config);  // LB never consults it.
  core::BatchAssignStep step(workload, model, options.sim, nullptr);
  core::EventSimulator sim(workload, options.sim, step);
  const double start = workload.task_stream.front().release_time_min;
  double end = 0.0;
  for (const assign::SpatialTask& task : workload.task_stream) {
    end = std::max(end, task.deadline_min);
  }
  for (double now = start; now <= end; now += options.sim.batch_window_min) {
    sim.ScheduleAssignTrigger(now);
  }
  std::vector<core::WorkerPredictor> predictors(workload.workers.size());

  StreamResult result;
  Stopwatch watch;
  result.metrics = sim.Run(core::AssignMethod::kLowerBound, predictors);
  result.seconds = watch.ElapsedSeconds();
  result.stats = sim.stats();
  return result;
}

int StreamBenchMain(int argc, char** argv) {
  core::RunOptions options;
  BenchScale scale;
  options.sim = BasePipelineConfig(scale).sim;
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "stream: events/second of the event-driven simulator core"
                 " over every workload spec\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "stream: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);
  {
    JsonReport report("stream", options.sinks.bench_json_dir);
    // The gated numbers are the explicit per-spec counts below; the obs
    // registry would only add the same counters accumulated across specs.
    report.IncludeObs(false);
    std::cout << "=== Event-driven simulator throughput (events/second) ==="
              << "\n";
    TablePrinter table({"workload", "events", "triggers", "arrivals",
                        "dropouts", "completed", "events/s"});
    for (const data::WorkloadSpec& spec : data::AllWorkloadSpecs()) {
      const std::string name = data::WorkloadSpecName(spec);
      StreamResult r = RunSpec(spec, options);
      const double events_per_s =
          r.seconds > 0.0 ? static_cast<double>(r.stats.events) / r.seconds
                          : 0.0;
      // Deterministic accounting (gated bitwise by tools/check.sh).
      report.AddMetric(name + ".events", static_cast<double>(r.stats.events));
      report.AddMetric(name + ".task_arrivals",
                       static_cast<double>(r.stats.task_arrivals));
      report.AddMetric(name + ".task_expiries",
                       static_cast<double>(r.stats.task_expiries));
      report.AddMetric(name + ".worker_logins",
                       static_cast<double>(r.stats.worker_logins));
      report.AddMetric(name + ".worker_completions",
                       static_cast<double>(r.stats.worker_completions));
      report.AddMetric(name + ".assign_triggers",
                       static_cast<double>(r.stats.assign_triggers));
      report.AddMetric(name + ".worker_logouts",
                       static_cast<double>(r.stats.worker_logouts));
      report.AddMetric(name + ".dropouts",
                       static_cast<double>(r.stats.dropouts));
      report.AddMetric(name + ".accepted",
                       static_cast<double>(r.metrics.accepted));
      report.AddMetric(name + ".completed",
                       static_cast<double>(r.metrics.completed));
      // Advisory (machine-dependent): the throughput and the wall-clock.
      report.AddMetric(name + ".events_per_s", events_per_s);
      report.AddStage(name + "_s", r.seconds);
      table.AddRow({name, Fmt(r.stats.events), Fmt(r.stats.assign_triggers),
                    Fmt(r.stats.task_arrivals), Fmt(r.stats.dropouts),
                    Fmt(static_cast<int64_t>(r.metrics.completed)),
                    Fmt(events_per_s, 0)});
    }
    table.Print(std::cout);
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
  }
  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "stream: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tamp::bench

int main(int argc, char** argv) {
  return tamp::bench::StreamBenchMain(argc, argv);
}
