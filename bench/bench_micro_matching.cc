// Micro-benchmarks of the Kuhn-Munkres matcher: the inner loop every
// assignment algorithm (and every PPI stage) calls.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matching/hungarian.h"

namespace {

std::vector<tamp::matching::Edge> RandomEdges(int n, double density,
                                              uint64_t seed) {
  tamp::Rng rng(seed);
  std::vector<tamp::matching::Edge> edges;
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.Bernoulli(density)) {
        edges.push_back({l, r, rng.Uniform(0.1, 10.0)});
      }
    }
  }
  return edges;
}

void BM_MaxWeightMatching(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomEdges(n, 0.2, 42);
  for (auto _ : state) {
    auto result = tamp::matching::MaxWeightMatching(n, n, edges);
    benchmark::DoNotOptimize(result.total_weight);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MaxWeightMatching)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity(benchmark::oNCubed);

void BM_GreedyMatching(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomEdges(n, 0.2, 42);
  for (auto _ : state) {
    auto result = tamp::matching::GreedyMatching(n, n, edges);
    benchmark::DoNotOptimize(result.total_weight);
  }
}
BENCHMARK(BM_GreedyMatching)->RangeMultiplier(2)->Range(16, 256);

void BM_MinCostAssignmentDense(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  tamp::Rng rng(7);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.Uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    auto result = tamp::matching::MinCostAssignment(cost);
    benchmark::DoNotOptimize(result.total_cost);
  }
}
BENCHMARK(BM_MinCostAssignmentDense)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

#include "micro_main.h"

namespace tamp::bench {

// Timing-only target: no deterministic accounting metrics to gate on.
void RegisterMicroMetrics(JsonReport&) {}

}  // namespace tamp::bench
