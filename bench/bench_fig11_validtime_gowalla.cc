// Reproduces Fig. 11: effect of the tasks' valid time,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("fig11_validtime_gowalla");
  tamp::bench::RunAssignmentSweep(
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kValidTime, {1.0, 2.0, 3.0, 4.0, 5.0},
      "Fig. 11: effect of task valid time (Gowalla-like)");
  return 0;
}
