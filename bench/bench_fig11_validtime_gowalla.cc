// Reproduces Fig. 11: effect of the tasks' valid time,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig11_validtime_gowalla",
      "Fig. 11: effect of task valid time (Gowalla-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kValidTime,
      {1.0, 2.0, 3.0, 4.0, 5.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
