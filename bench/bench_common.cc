#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/tasks.h"

namespace tamp::bench {
namespace {

JsonReport* g_active_report = nullptr;

/// JSON string escaping for the restricted key space we emit (metric names
/// built from algorithm/method labels and numbers).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void WriteJsonSection(std::ofstream& os, const char* name,
                      const std::map<std::string, double>& values,
                      bool trailing_comma) {
  os << "  \"" << name << "\": {";
  bool first = true;
  for (const auto& [key, value] : values) {
    if (!first) os << ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << "\n    \"" << JsonEscape(key) << "\": " << buf;
  }
  if (!values.empty()) os << "\n  ";
  os << "}" << (trailing_comma ? "," : "") << "\n";
}

/// Assignment methods in presentation order, with the loss variant used
/// to train the models each consumes (per Section IV-A: KM/PPI use the
/// task-assignment-oriented loss; the *-loss variants use plain MSE, as
/// does the external GGPSO baseline).
struct MethodSpec {
  const char* name;
  core::AssignMethod method;
  bool use_ta_loss_models;
};

constexpr MethodSpec kMethods[] = {
    {"UB", core::AssignMethod::kUpperBound, false},
    {"LB", core::AssignMethod::kLowerBound, false},
    {"KM-loss", core::AssignMethod::kKm, false},
    {"KM", core::AssignMethod::kKm, true},
    {"PPI-loss", core::AssignMethod::kPpi, false},
    {"PPI", core::AssignMethod::kPpi, true},
    {"GGPSO", core::AssignMethod::kGgpso, false},
};

std::string FactorTicks(const std::vector<meta::Factor>& factors) {
  auto has = [&](meta::Factor f) {
    for (meta::Factor g : factors) {
      if (g == f) return true;
    }
    return false;
  };
  std::string out;
  out += has(meta::Factor::kDistribution) ? "d " : "- ";
  out += has(meta::Factor::kSpatial) ? "s " : "- ";
  out += has(meta::Factor::kLearningPath) ? "l" : "-";
  return out;
}

/// Compact factor-subset slug for metric keys: {Sim_d, Sim_l} -> "dl".
std::string FactorSlug(const std::vector<meta::Factor>& factors) {
  std::string slug;
  auto has = [&](meta::Factor f) {
    for (meta::Factor g : factors) {
      if (g == f) return true;
    }
    return false;
  };
  if (has(meta::Factor::kDistribution)) slug += 'd';
  if (has(meta::Factor::kSpatial)) slug += 's';
  if (has(meta::Factor::kLearningPath)) slug += 'l';
  return slug.empty() ? "none" : slug;
}

void RecordPredRow(const std::string& prefix, const PredRow& row) {
  JsonReport* report = JsonReport::active();
  if (report == nullptr) return;
  report->AddMetric(prefix + ".rmse_km", row.rmse);
  report->AddMetric(prefix + ".mae_km", row.mae);
  report->AddMetric(prefix + ".mr", row.mr);
  report->AddMetric(prefix + ".tt_s", row.tt);
}

/// The bench workload for the run: the calibrated base for the dataset,
/// with the caller's scenario (--workload) and seed (--seed) applied.
data::WorkloadConfig RunWorkloadConfig(const core::RunOptions& options,
                                       const BenchScale& scale) {
  data::WorkloadConfig workload =
      BaseWorkloadConfig(options.workload.kind, scale);
  workload.scenario = options.workload.scenario;
  if (options.seed != 0) workload.seed = options.seed;
  return workload;
}

/// The bench pipeline for the run: the calibrated base with the caller's
/// simulator block (threads and sinks are applied by BenchMain).
core::PipelineConfig RunPipelineConfig(const core::RunOptions& options,
                                       const BenchScale& scale) {
  core::PipelineConfig config = BasePipelineConfig(scale);
  config.sim = options.sim;
  return config;
}

}  // namespace

JsonReport::JsonReport(std::string target, std::string json_dir)
    : target_(std::move(target)), json_dir_(std::move(json_dir)) {
  g_active_report = this;
}

JsonReport::~JsonReport() {
  if (g_active_report == this) g_active_report = nullptr;
  std::string dir = json_dir_;
  if (dir.empty()) {
    const char* env = std::getenv("TAMP_BENCH_JSON_DIR");
    if (env != nullptr) dir = env;
  }
  std::string path = dir.empty() ? "BENCH_" + target_ + ".json"
                                 : dir + "/BENCH_" + target_ + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: could not write " << path << "\n";
    return;
  }
  os << "{\n";
  os << "  \"target\": \"" << JsonEscape(target_) << "\",\n";
  os << "  \"threads\": " << ParallelThreadCount() << ",\n";
  WriteJsonSection(os, "stages", stages_, /*trailing_comma=*/true);
  // The observability registry snapshot (DESIGN.md §4e). Keys with an
  // `_s` component are wall-clock-derived and advisory in bench_compare;
  // the rest are deterministic work counts.
  if (include_obs_) {
    WriteJsonSection(os, "obs", obs::MetricsRegistry::Global().Snapshot(),
                     /*trailing_comma=*/true);
  }
  WriteJsonSection(os, "metrics", metrics_, /*trailing_comma=*/false);
  os << "}\n";
  std::cout << "\nJSON: " << path << "\n";
}

void JsonReport::AddMetric(const std::string& key, double value) {
  metrics_[key] = value;
}

void JsonReport::AddStage(const std::string& stage, double seconds) {
  stages_[stage] = seconds;
}

JsonReport* JsonReport::active() { return g_active_report; }

data::WorkloadConfig BaseWorkloadConfig(data::WorkloadKind kind,
                                        const BenchScale& scale) {
  data::WorkloadConfig config;
  config.kind = kind;
  config.num_workers = scale.num_workers;
  config.num_train_days = scale.num_train_days;
  config.num_tasks = scale.num_tasks;
  config.num_historical_tasks = 1500;
  config.detour_budget_km = 4.0;  // Table III default (varied by Fig. 6/9).
  config.seed = kind == data::WorkloadKind::kPortoDidi ? 20250707 : 20250708;
  return config;
}

core::PipelineConfig BasePipelineConfig(const BenchScale& scale) {
  core::PipelineConfig config;
  config.trainer.model.hidden_dim = 16;
  config.trainer.meta.iterations = scale.meta_iterations;
  config.trainer.fine_tune_steps = scale.sim_fine_tune_steps;
  config.trainer.projection_dim = 16;
  config.trainer.tree.game.k = 3;
  config.trainer.tree.thresholds = {0.9, 0.9};
  config.sim.prediction_horizon_steps = 4;
  config.sim.match_radius_km = 0.5;
  config.sim.ggpso.population = 24;
  config.sim.ggpso.generations = 60;
  // Gentle task-density reweighting (Eq. 7): kappa/delta keep the mean
  // weight at 1 while boosting task-dense regions ~2-3x.
  config.ta_loss.kappa = 0.3;
  config.ta_loss.delta = 0.7;
  config.ta_loss.dq_km = 1.5;
  return config;
}

core::RunOptions DefaultRunOptions(const BenchSpec& spec) {
  core::RunOptions options;
  options.workload.kind = spec.dataset;
  BenchScale scale;
  options.sim = BasePipelineConfig(scale).sim;
  return options;
}

int BenchMain(const BenchSpec& spec, int argc, char** argv) {
  core::RunOptions options = DefaultRunOptions(spec);
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    // --help: the message carries the flags text.
    std::cout << spec.target << ": " << spec.title << "\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << spec.target << ": " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);
  {
    JsonReport report(spec.target, options.sinks.bench_json_dir);
    switch (spec.experiment) {
      case Experiment::kClusterAblation:
        RunClusterAblation(spec, options);
        break;
      case Experiment::kSeqLenSweep:
        RunSeqLenSweep(spec, options);
        break;
      case Experiment::kAssignmentSweep:
        RunAssignmentSweep(spec, options);
        break;
    }
  }
  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << spec.target << ": " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

PredRow RunPredictionExperiment(const data::WorkloadConfig& workload_config,
                                meta::MetaAlgorithm algorithm,
                                const std::vector<meta::Factor>& factors,
                                bool use_game, const BenchScale& scale,
                                const core::RunOptions& options) {
  data::Workload workload = data::GenerateWorkload(workload_config);

  core::PipelineConfig pipeline_config = RunPipelineConfig(options, scale);
  // The model must emit exactly the workload's seq_out points per sample.
  pipeline_config.trainer.model.seq_out = workload_config.seq_out;
  // Light fine-tuning so the quality of the *meta-initialization* — what
  // the clustering ablation actually varies — dominates the metrics.
  pipeline_config.trainer.fine_tune_steps = scale.table_fine_tune_steps;
  pipeline_config.trainer.factors = factors;
  pipeline_config.use_ta_loss = false;  // Prediction tables use MSE loss.
  // The trainer derives use_game from the algorithm (kGttaml = game,
  // kGttamlGt = plain multi-level clustering), so map the ablation axis
  // onto the algorithm choice.
  pipeline_config.meta_algorithm =
      algorithm == meta::MetaAlgorithm::kGttaml && !use_game
          ? meta::MetaAlgorithm::kGttamlGt
          : algorithm;
  // A wider matching radius for Def. 7 keeps the table MRs out of the
  // small-count noise floor.
  pipeline_config.sim.match_radius_km = 1.0;

  core::TampPipeline pipeline(pipeline_config);
  core::OfflineResult offline = pipeline.TrainOffline(workload);

  PredRow row;
  row.rmse = offline.eval.aggregate.rmse_km;
  row.mae = offline.eval.aggregate.mae_km;
  row.mr = offline.eval.aggregate.matching_rate;
  row.tt = offline.models.train_seconds;
  return row;
}

void RunClusterAblation(const BenchSpec& spec,
                        const core::RunOptions& options) {
  BenchScale scale;
  data::WorkloadConfig workload = RunWorkloadConfig(options, scale);
  Stopwatch total_watch;
  double tt_sum = 0.0;

  const std::vector<std::vector<meta::Factor>> factor_subsets = {
      {meta::Factor::kDistribution},
      {meta::Factor::kSpatial},
      {meta::Factor::kLearningPath},
      {meta::Factor::kDistribution, meta::Factor::kSpatial},
      {meta::Factor::kDistribution, meta::Factor::kSpatial,
       meta::Factor::kLearningPath},
  };

  std::cout << "=== " << spec.title << " ===\n";
  TablePrinter table({"cluster algorithm", "factors (Sim_d Sim_s Sim_l)",
                      "RMSE(km)", "MAE(km)", "MR", "TT(s)"});
  for (bool use_game : {true, false}) {
    for (const auto& factors : factor_subsets) {
      // GTMC vs plain multi-level k-medoids (the paper's "k-means" row).
      PredRow row =
          RunPredictionExperiment(workload, meta::MetaAlgorithm::kGttaml,
                                  factors, use_game, scale, options);
      table.AddRow({use_game ? "GTMC" : "k-means", FactorTicks(factors),
                    Fmt(row.rmse, 4), Fmt(row.mae, 4), Fmt(row.mr, 4),
                    Fmt(row.tt, 1)});
      RecordPredRow(std::string(use_game ? "GTMC" : "k-means") + "." +
                        FactorSlug(factors),
                    row);
      tt_sum += row.tt;
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  if (JsonReport* report = JsonReport::active()) {
    report->AddStage("meta_train_tt_s", tt_sum);
    report->AddStage("total_s", total_watch.ElapsedSeconds());
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
}

void RunSeqLenSweep(const BenchSpec& spec, const core::RunOptions& options) {
  BenchScale scale;
  Stopwatch total_watch;
  double tt_sum = 0.0;

  struct Setting {
    int seq_in;
    int seq_out;
  };
  const std::vector<Setting> settings = {
      {1, 1}, {5, 1}, {10, 1},  // seq_in sweep (seq_out = 1).
      {5, 2}, {5, 3},           // seq_out sweep (seq_in = 5).
  };
  const std::vector<std::pair<const char*, meta::MetaAlgorithm>> algorithms = {
      {"MAML", meta::MetaAlgorithm::kMaml},
      {"CTML", meta::MetaAlgorithm::kCtml},
      {"GTTAML-GT", meta::MetaAlgorithm::kGttamlGt},
      {"GTTAML", meta::MetaAlgorithm::kGttaml},
  };

  std::cout << "=== " << spec.title << " ===\n";
  TablePrinter table({"seq_in", "seq_out", "algorithm", "RMSE(km)", "MAE(km)",
                      "MR", "TT(s)"});
  for (const Setting& setting : settings) {
    data::WorkloadConfig workload = RunWorkloadConfig(options, scale);
    workload.seq_in = setting.seq_in;
    workload.seq_out = setting.seq_out;
    for (const auto& [name, algorithm] : algorithms) {
      data::WorkloadConfig per_run = workload;
      PredRow row = RunPredictionExperiment(
          per_run, algorithm,
          {meta::Factor::kDistribution, meta::Factor::kSpatial,
           meta::Factor::kLearningPath},
          /*use_game=*/true, scale, options);
      table.AddRow({Fmt(static_cast<int64_t>(setting.seq_in)),
                    Fmt(static_cast<int64_t>(setting.seq_out)), name,
                    Fmt(row.rmse, 4), Fmt(row.mae, 4), Fmt(row.mr, 4),
                    Fmt(row.tt, 1)});
      RecordPredRow(std::string(name) + ".in" +
                        Fmt(static_cast<int64_t>(setting.seq_in)) + ".out" +
                        Fmt(static_cast<int64_t>(setting.seq_out)),
                    row);
      tt_sum += row.tt;
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  if (JsonReport* report = JsonReport::active()) {
    report->AddStage("meta_train_tt_s", tt_sum);
    report->AddStage("total_s", total_watch.ElapsedSeconds());
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
}

void RunAssignmentSweep(const BenchSpec& spec,
                        const core::RunOptions& options) {
  BenchScale scale;
  data::WorkloadConfig workload_config = RunWorkloadConfig(options, scale);
  data::Workload workload = data::GenerateWorkload(workload_config);
  const std::vector<double>& values = spec.sweep_values;
  const std::vector<core::AssignMethod>& enabled =
      core::EffectiveMethods(options);
  Stopwatch total_watch;

  // Train once per loss variant; the sweep only perturbs the online stage.
  core::PipelineConfig base = RunPipelineConfig(options, scale);
  base.use_ta_loss = true;
  core::TampPipeline ta_pipeline(base);
  std::cout << "training (task-assignment-oriented loss) ..." << std::flush;
  core::OfflineResult ta_offline = ta_pipeline.TrainOffline(workload);
  std::cout << " done (MR " << Fmt(ta_offline.eval.aggregate.matching_rate, 3)
            << ", " << Fmt(ta_offline.models.train_seconds, 1) << "s)\n";

  core::PipelineConfig mse_config = base;
  mse_config.use_ta_loss = false;
  core::TampPipeline mse_pipeline(mse_config);
  std::cout << "training (MSE loss) ..." << std::flush;
  core::OfflineResult mse_offline = mse_pipeline.TrainOffline(workload);
  std::cout << " done (MR "
            << Fmt(mse_offline.eval.aggregate.matching_rate, 3) << ", "
            << Fmt(mse_offline.models.train_seconds, 1) << "s)\n";
  if (JsonReport* report = JsonReport::active()) {
    report->AddStage("train_ta_s", ta_offline.models.train_seconds);
    report->AddStage("train_mse_s", mse_offline.models.train_seconds);
  }

  TablePrinter completion({"method"}), rejection({"method"}),
      cost({"method"}), runtime({"method"});
  std::vector<std::string> header = {"method"};
  for (double v : values) header.push_back(Fmt(v, 1));
  completion = TablePrinter(header);
  rejection = TablePrinter(header);
  cost = TablePrinter(header);
  runtime = TablePrinter(header);

  for (const MethodSpec& method_spec : kMethods) {
    if (std::find(enabled.begin(), enabled.end(), method_spec.method) ==
        enabled.end()) {
      continue;
    }
    std::vector<std::string> comp_row = {method_spec.name};
    std::vector<std::string> rej_row = {method_spec.name};
    std::vector<std::string> cost_row = {method_spec.name};
    std::vector<std::string> time_row = {method_spec.name};
    for (double v : values) {
      // Perturb the workload along the sweep axis.
      data::Workload run = workload;
      switch (spec.sweep_var) {
        case SweepVar::kDetour:
          for (auto& worker : run.workers) worker.detour_budget_km = v;
          break;
        case SweepVar::kNumTasks:
        case SweepVar::kValidTime: {
          data::TaskStreamConfig stream;
          stream.num_tasks = spec.sweep_var == SweepVar::kNumTasks
                                 ? static_cast<int>(v)
                                 : workload_config.num_tasks;
          double test_day_offset = 1440.0 * workload_config.num_train_days;
          stream.horizon_start_min =
              test_day_offset + workload_config.day.day_start_min;
          stream.horizon_end_min =
              test_day_offset + workload_config.day.day_end_min;
          stream.valid_lo_units = spec.sweep_var == SweepVar::kValidTime
                                      ? v
                                      : workload_config.task_valid_lo_units;
          stream.valid_hi_units = spec.sweep_var == SweepVar::kValidTime
                                      ? v + 1.0
                                      : workload_config.task_valid_hi_units;
          stream.time_unit_min = workload_config.time_unit_min;
          Rng stream_rng(workload_config.seed ^ 0x7A5Cull);
          run.task_stream = data::GenerateTaskStream(stream, run.hotspots,
                                                     run.grid, stream_rng);
          break;
        }
      }
      core::TampPipeline& pipeline =
          method_spec.use_ta_loss_models ? ta_pipeline : mse_pipeline;
      core::OfflineResult& offline =
          method_spec.use_ta_loss_models ? ta_offline : mse_offline;
      core::SimMetrics metrics =
          pipeline.RunOnline(run, offline, method_spec.method);
      comp_row.push_back(Fmt(metrics.CompletionRatio(), 3));
      rej_row.push_back(Fmt(metrics.RejectionRatio(), 3));
      cost_row.push_back(Fmt(metrics.AvgCostKm(), 3));
      time_row.push_back(Fmt(metrics.assign_seconds, 3));
      if (JsonReport* report = JsonReport::active()) {
        std::string prefix = std::string(method_spec.name) + ".v" + Fmt(v, 1);
        report->AddMetric(prefix + ".completion", metrics.CompletionRatio());
        report->AddMetric(prefix + ".rejection", metrics.RejectionRatio());
        report->AddMetric(prefix + ".cost_km", metrics.AvgCostKm());
        report->AddMetric(prefix + ".assign_s", metrics.assign_seconds);
      }
      std::cout << "." << std::flush;
    }
    completion.AddRow(std::move(comp_row));
    rejection.AddRow(std::move(rej_row));
    cost.AddRow(std::move(cost_row));
    runtime.AddRow(std::move(time_row));
  }
  std::cout << "\n";

  auto print_panel = [&](const char* panel, TablePrinter& table) {
    std::cout << "\n--- " << spec.title << ": " << panel << " ---\n";
    table.Print(std::cout);
    std::cout << "CSV:\n";
    table.PrintCsv(std::cout);
  };
  print_panel("completion ratio", completion);
  print_panel("rejection ratio", rejection);
  print_panel("worker cost (km)", cost);
  print_panel("assignment running time (s)", runtime);
  if (JsonReport* report = JsonReport::active()) {
    report->AddStage("total_s", total_watch.ElapsedSeconds());
  }
}

}  // namespace tamp::bench
