// Reproduces Table VII: effect of seq_in and seq_out on the four
// meta-learning algorithms, on the Gowalla/Foursquare-like workload.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("table7_seqlen_gowalla");
  tamp::bench::RunSeqLenSweep(
      tamp::data::WorkloadKind::kGowallaFoursquare,
      "Table VII: effect of seq_in / seq_out (Gowalla-like)");
  return 0;
}
