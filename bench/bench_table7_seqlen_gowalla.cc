// Reproduces Table VII: effect of seq_in and seq_out on the four
// meta-learning algorithms, on the Gowalla/Foursquare-like workload.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "table7_seqlen_gowalla",
      "Table VII: effect of seq_in / seq_out (Gowalla-like)",
      tamp::bench::Experiment::kSeqLenSweep,
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kDetour,
      {}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
