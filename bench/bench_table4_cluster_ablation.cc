// Reproduces Table IV: effect of the learning-task clustering algorithm
// (GTMC vs plain multi-level k-means/medoids) and of the clustering factor
// subset {Sim_d, Sim_s, Sim_l} on mobility prediction quality, on the
// Porto/Didi-like workload.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("table4_cluster_ablation");
  tamp::bench::RunClusterAblation(
      tamp::data::WorkloadKind::kPortoDidi,
      "Table IV: clustering algorithm & factor ablation (Porto-like)");
  return 0;
}
