// Reproduces Table IV: effect of the learning-task clustering algorithm
// (GTMC vs plain multi-level k-means/medoids) and of the clustering factor
// subset {Sim_d, Sim_s, Sim_l} on mobility prediction quality, on the
// Porto/Didi-like workload.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "table4_cluster_ablation",
      "Table IV: clustering algorithm & factor ablation (Porto-like)",
      tamp::bench::Experiment::kClusterAblation,
      tamp::data::WorkloadKind::kPortoDidi,
      tamp::bench::SweepVar::kDetour,
      {}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
