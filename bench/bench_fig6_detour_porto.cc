// Reproduces Fig. 6: effect of the worker detour budget d on completion
// ratio, rejection ratio, worker cost, and running time, Porto/Didi-like.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("fig6_detour_porto");
  tamp::bench::RunAssignmentSweep(
      tamp::data::WorkloadKind::kPortoDidi, tamp::bench::SweepVar::kDetour,
      {2.0, 4.0, 6.0, 8.0, 10.0},
      "Fig. 6: effect of worker detour d (Porto-like)");
  return 0;
}
