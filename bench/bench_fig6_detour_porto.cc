// Reproduces Fig. 6: effect of the worker detour budget d on completion
// ratio, rejection ratio, worker cost, and running time, Porto/Didi-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig6_detour_porto",
      "Fig. 6: effect of worker detour d (Porto-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kPortoDidi,
      tamp::bench::SweepVar::kDetour,
      {2.0, 4.0, 6.0, 8.0, 10.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
