// Reproduces Fig. 7: effect of the number of spatial tasks (the paper's
// 1K..5K scaled to this harness's worker count), Porto/Didi-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig7_tasks_porto",
      "Fig. 7: effect of the number of spatial tasks (Porto-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kPortoDidi,
      tamp::bench::SweepVar::kNumTasks,
      {300.0, 500.0, 700.0, 900.0, 1100.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
