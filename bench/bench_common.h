#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/run_options.h"
#include "data/workload.h"
#include "meta/trainer.h"

namespace tamp::bench {

/// Machine-readable bench output. A bench main opens one JsonReport for
/// its target; the Run* harness functions below record every table cell
/// (metric name -> value) and per-stage wall-clock into it, and the
/// destructor writes `BENCH_<target>.json` (into the configured directory,
/// TAMP_BENCH_JSON_DIR, or the working directory) next to the
/// human-readable table/CSV on stdout. The file also records the thread
/// count the run used and a snapshot of the observability registry
/// (DESIGN.md §4e), so perf trajectories (tools/bench_compare) compare
/// like with like.
class JsonReport {
 public:
  /// `json_dir` overrides TAMP_BENCH_JSON_DIR when non-empty.
  explicit JsonReport(std::string target, std::string json_dir = "");
  ~JsonReport();  // Writes the JSON file; never throws (best effort).

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  /// Records one table cell, e.g. ("GTMC.dsl.rmse_km", 2.0107).
  void AddMetric(const std::string& key, double value);

  /// Records one stage wall-clock in seconds, e.g. ("total_s", 51.6).
  void AddStage(const std::string& stage, double seconds);

  /// Whether the written JSON embeds the observability-registry snapshot
  /// (default true). Micro-benchmark targets turn this off: their obs
  /// counters scale with google-benchmark's auto-chosen iteration counts,
  /// which would make the "deterministic" section machine-dependent.
  void IncludeObs(bool include) { include_obs_ = include; }

  /// The report opened by the currently running bench target, or nullptr
  /// (harness functions are no-op recorders without an open report).
  static JsonReport* active();

 private:
  std::string target_;
  std::string json_dir_;
  bool include_obs_ = true;
  std::map<std::string, double> metrics_;  // Ordered: deterministic output.
  std::map<std::string, double> stages_;
};

/// Scaled-down experiment sizes (the paper's testbed trains for thousands
/// of seconds on a GPU; this harness runs the full sweep on one CPU core).
/// The reproduction target is the *relative* orderings, not absolute
/// numbers; see EXPERIMENTS.md.
struct BenchScale {
  int num_workers = 24;
  int num_tasks = 700;
  int num_train_days = 3;
  int table_fine_tune_steps = 20;  // Prediction-table experiments: light,
                                   // so meta-init quality dominates.
  int sim_fine_tune_steps = 60;    // Assignment experiments.
  int meta_iterations = 25;
};

/// The calibrated base workload for one of the two dataset pairs.
data::WorkloadConfig BaseWorkloadConfig(data::WorkloadKind kind,
                                        const BenchScale& scale);

/// The calibrated base pipeline (model size, meta hyper-parameters,
/// simulator settings).
core::PipelineConfig BasePipelineConfig(const BenchScale& scale);

// ---------------------------------------------------------------------
// Bench target description + shared main.
// ---------------------------------------------------------------------

/// Which x-axis an assignment sweep varies.
enum class SweepVar {
  kDetour,     // Worker detour budget d (km). Fig. 6 / Fig. 9.
  kNumTasks,   // Number of spatial tasks.     Fig. 7 / Fig. 10.
  kValidTime,  // Valid-time lower bound (time units; upper = lo + 1).
               //                              Fig. 8 / Fig. 11.
};

/// Which experiment family a bench target reproduces.
enum class Experiment {
  kClusterAblation,  // Tables IV/VI: clustering algorithm x factor subset.
  kSeqLenSweep,      // Tables V/VII: seq_in / seq_out over four algorithms.
  kAssignmentSweep,  // Figs. 6-11: assignment methods over a sweep axis.
};

/// A declarative description of one bench target. Each bench main builds
/// one of these and delegates to BenchMain.
struct BenchSpec {
  const char* target;  // BENCH_<target>.json stem.
  const char* title;   // Paper-style table/figure caption.
  Experiment experiment;
  data::WorkloadKind dataset;
  SweepVar sweep_var = SweepVar::kDetour;  // kAssignmentSweep only.
  std::vector<double> sweep_values;        // kAssignmentSweep only.
};

/// The calibrated core::RunOptions for a bench target: the dataset pair
/// plus BasePipelineConfig's simulator block. Command-line flags
/// (core::ParseRunFlags) override individual fields.
core::RunOptions DefaultRunOptions(const BenchSpec& spec);

/// Shared bench entry point: parse --flags over DefaultRunOptions(spec),
/// validate, apply (threads/tracing), open the JsonReport, dispatch the
/// experiment, and write the trace/metrics artifacts. Returns the process
/// exit code.
int BenchMain(const BenchSpec& spec, int argc, char** argv);

// ---------------------------------------------------------------------
// Prediction-side experiments (Tables IV-VII).
// ---------------------------------------------------------------------

/// One row of a prediction table.
struct PredRow {
  double rmse = 0.0;  // km
  double mae = 0.0;   // km
  double mr = 0.0;    // Matching rate at the configured radius a.
  double tt = 0.0;    // Meta-training wall-clock seconds.
};

/// Trains the given meta-learning algorithm on the workload (MSE loss, as
/// the paper's prediction tables prescribe) and evaluates on held-out data.
/// `factors`/`use_game` configure the GTMC ablation axes; they are ignored
/// by MAML/CTML. `options.sim` seeds the pipeline's simulator block (the
/// table experiments then pin match_radius_km to the Def. 7 table radius).
PredRow RunPredictionExperiment(const data::WorkloadConfig& workload_config,
                                meta::MetaAlgorithm algorithm,
                                const std::vector<meta::Factor>& factors,
                                bool use_game, const BenchScale& scale,
                                const core::RunOptions& options);

/// Table IV/VI: the clustering-algorithm x factor-subset ablation.
/// Prints the table and its CSV.
void RunClusterAblation(const BenchSpec& spec,
                        const core::RunOptions& options);

/// Table V/VII: the seq_in / seq_out sweep over the four algorithms.
void RunSeqLenSweep(const BenchSpec& spec, const core::RunOptions& options);

// ---------------------------------------------------------------------
// Assignment-side experiments (Figs. 6-11).
// ---------------------------------------------------------------------

/// Runs the full assignment comparison (UB, LB, KM-loss, KM, PPI-loss,
/// PPI, GGPSO, filtered by options.methods) over spec.sweep_values,
/// printing the four metric panels (completion ratio, rejection ratio,
/// worker cost, running time) the paper's figures plot.
void RunAssignmentSweep(const BenchSpec& spec,
                        const core::RunOptions& options);

}  // namespace tamp::bench
