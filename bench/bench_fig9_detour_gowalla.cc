// Reproduces Fig. 9: effect of the worker detour budget d,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig9_detour_gowalla",
      "Fig. 9: effect of worker detour d (Gowalla-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kDetour,
      {2.0, 4.0, 6.0, 8.0, 10.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
