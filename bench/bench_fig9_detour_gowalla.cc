// Reproduces Fig. 9: effect of the worker detour budget d,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("fig9_detour_gowalla");
  tamp::bench::RunAssignmentSweep(
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kDetour, {2.0, 4.0, 6.0, 8.0, 10.0},
      "Fig. 9: effect of worker detour d (Gowalla-like)");
  return 0;
}
