// Geo-sharded assignment at fleet scale (DESIGN.md §4k): synthetic
// clustered fleets of W = 1k / 10k / 100k workers, where cluster spacing
// (~100 km) dwarfs the match radius so the candidate graph decomposes into
// one connected component per populated cluster. The bench runs the full
// sharded batch-assignment path — spatial-index build, pruned candidate
// generation, shard-plan construction, and the parallel per-shard KM solve
// — and reports assignments/second plus the deterministic shard accounting
// (shard counts, max shard size, candidate rows) the bench gate pins.
//
// Methodology: every reported *count* is a pure function of the synthesis
// seed and thread-count-invariant (the shard plan is deterministic and the
// sharded matching is bitwise-equal to the global solve; see
// assign_sharding_test). The `_per_s` / `_s` keys are wall-clock and stay
// advisory in tamp_bench_compare. No global-solve comparison runs at
// W = 100k — the padded square matrix of the unsharded KM would be
// infeasible there, which is precisely the point of sharding.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/sharding.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/run_options.h"
#include "matching/hungarian.h"

namespace tamp::bench {
namespace {

constexpr double kClusterSpacingKm = 100.0;  // >> match radius: no bridges.
constexpr double kClusterRadiusKm = 0.7;
constexpr int kWorkersPerCluster = 64;
constexpr int kWorkersPerTask = 8;

struct ScaleFleet {
  std::vector<assign::SpatialTask> tasks;
  std::vector<assign::CandidateWorker> workers;
};

/// Deterministic clustered fleet: workers and tasks scatter around cluster
/// centers laid out on a wide grid, so feasibility never crosses clusters.
ScaleFleet SynthesizeFleet(int num_workers, uint64_t seed) {
  Rng rng(seed);
  const int num_clusters = std::max(1, num_workers / kWorkersPerCluster);
  const int grid = 1 + static_cast<int>(std::sqrt(
                           static_cast<double>(num_clusters - 1)));
  auto center = [&](int cluster) -> geo::Point {
    return {kClusterSpacingKm * static_cast<double>(cluster % grid),
            kClusterSpacingKm * static_cast<double>(cluster / grid)};
  };
  auto jitter = [&](geo::Point c) -> geo::Point {
    return {c.x + rng.Uniform(-kClusterRadiusKm, kClusterRadiusKm),
            c.y + rng.Uniform(-kClusterRadiusKm, kClusterRadiusKm)};
  };

  ScaleFleet fleet;
  fleet.workers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    assign::CandidateWorker worker;
    worker.id = w;
    worker.current_location = jitter(center(w % num_clusters));
    // A couple of predicted points near the cluster, minutes ahead: the
    // Theorem-2 evaluation sees a realistic short trajectory.
    const int steps = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int s = 1; s <= steps; ++s) {
      worker.predicted.push_back(
          {jitter(center(w % num_clusters)), 5.0 * static_cast<double>(s)});
    }
    worker.matching_rate = rng.Uniform(0.2, 0.9);
    fleet.workers.push_back(std::move(worker));
  }
  const int num_tasks = std::max(1, num_workers / kWorkersPerTask);
  fleet.tasks.reserve(static_cast<size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    assign::SpatialTask task;
    task.id = t;
    task.location = jitter(center(t % num_clusters));
    task.release_time_min = 0.0;
    task.deadline_min = 60.0;
    fleet.tasks.push_back(std::move(task));
  }
  return fleet;
}

struct ScaleResult {
  int64_t candidate_evals = 0;
  int64_t rows = 0;
  int64_t shard_count = 0;
  int64_t shard_max_rows = 0;
  int64_t matched = 0;
  double index_s = 0.0;
  double candidates_s = 0.0;
  double plan_s = 0.0;
  double solve_s = 0.0;
  double total_s = 0.0;
};

ScaleResult RunScale(const ScaleFleet& fleet, double match_radius_km) {
  ScaleResult r;
  Stopwatch total_watch;

  Stopwatch index_watch;
  assign::CandidateIndex index(fleet.workers);
  r.index_s = index_watch.ElapsedSeconds();

  Stopwatch cand_watch;
  assign::CandidateGenStats stats;
  std::vector<std::vector<assign::TaskCandidate>> table =
      assign::GenerateCandidates(fleet.tasks, fleet.workers, match_radius_km,
                                 /*now_min=*/0.0, &index, &stats);
  r.candidates_s = cand_watch.ElapsedSeconds();
  r.candidate_evals = stats.evaluated;

  Stopwatch plan_watch;
  assign::ShardPlan plan =
      assign::BuildShardPlan(table, fleet.tasks, fleet.workers);
  r.plan_s = plan_watch.ElapsedSeconds();
  r.rows = plan.total_rows;
  r.shard_count = static_cast<int64_t>(plan.shards.size());
  r.shard_max_rows = plan.max_rows;

  // The KM edge set, exactly as km_assigner builds it (stage-3 feasible
  // rows, reciprocal-detour weights with the distance floor).
  std::vector<matching::Edge> edges;
  for (size_t t = 0; t < table.size(); ++t) {
    for (const assign::TaskCandidate& tc : table[t]) {
      if (!tc.stage3_feasible) continue;
      edges.push_back({static_cast<int>(t), tc.worker,
                       1.0 / std::max(tc.min_dis, 1e-3)});
    }
  }

  Stopwatch solve_watch;
  matching::MatchResult match = assign::ShardedMaxWeightMatching(
      static_cast<int>(fleet.tasks.size()),
      static_cast<int>(fleet.workers.size()), edges, plan);
  r.solve_s = solve_watch.ElapsedSeconds();
  r.matched = static_cast<int64_t>(match.pairs.size());

  r.total_s = total_watch.ElapsedSeconds();
  return r;
}

int ScaleBenchMain(int argc, char** argv) {
  core::RunOptions options;
  BenchScale scale;
  options.sim = BasePipelineConfig(scale).sim;
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "scale: sharded batch assignment over synthetic clustered"
                 " fleets (W = 1k/10k/100k)\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "scale: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);
  {
    JsonReport report("scale", options.sinks.bench_json_dir);
    // The gated numbers are the explicit per-fleet counts below; obs
    // counters would only duplicate them accumulated across fleets.
    report.IncludeObs(false);
    std::cout << "=== Geo-sharded assignment at fleet scale ===\n";
    TablePrinter table({"workers", "tasks", "rows", "shards", "max_rows",
                       "matched", "assign/s"});
    for (int num_workers : {1000, 10000, 100000}) {
      const std::string name = "w" + std::to_string(num_workers);
      ScaleFleet fleet =
          SynthesizeFleet(num_workers, 7000 + static_cast<uint64_t>(
                                                  num_workers));
      ScaleResult r = RunScale(fleet, options.sim.match_radius_km);
      const double assign_per_s =
          r.total_s > 0.0 ? static_cast<double>(r.matched) / r.total_s : 0.0;
      // Deterministic accounting (gated bitwise by tools/check.sh).
      report.AddMetric(name + ".candidate_evals",
                       static_cast<double>(r.candidate_evals));
      report.AddMetric(name + ".rows", static_cast<double>(r.rows));
      report.AddMetric(name + ".shard_count",
                       static_cast<double>(r.shard_count));
      report.AddMetric(name + ".shard_max_rows",
                       static_cast<double>(r.shard_max_rows));
      report.AddMetric(name + ".matched", static_cast<double>(r.matched));
      // Advisory (machine-dependent): throughput and the stage clocks.
      report.AddMetric(name + ".assign_per_s", assign_per_s);
      report.AddStage(name + ".index_s", r.index_s);
      report.AddStage(name + ".candidates_s", r.candidates_s);
      report.AddStage(name + ".plan_s", r.plan_s);
      report.AddStage(name + ".solve_s", r.solve_s);
      report.AddStage(name + "_s", r.total_s);
      table.AddRow({std::to_string(num_workers),
                    Fmt(static_cast<int64_t>(fleet.tasks.size())),
                    Fmt(r.rows), Fmt(r.shard_count), Fmt(r.shard_max_rows),
                    Fmt(r.matched), Fmt(assign_per_s, 0)});
    }
    table.Print(std::cout);
    std::cout << "\nCSV:\n";
    table.PrintCsv(std::cout);
  }
  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "scale: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tamp::bench

int main(int argc, char** argv) {
  return tamp::bench::ScaleBenchMain(argc, argv);
}
