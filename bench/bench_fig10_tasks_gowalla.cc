// Reproduces Fig. 10: effect of the number of spatial tasks,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main() {
  tamp::bench::JsonReport report("fig10_tasks_gowalla");
  tamp::bench::RunAssignmentSweep(
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kNumTasks,
      {300.0, 500.0, 700.0, 900.0, 1100.0},
      "Fig. 10: effect of the number of spatial tasks (Gowalla-like)");
  return 0;
}
