// Reproduces Fig. 10: effect of the number of spatial tasks,
// Gowalla/Foursquare-like.
#include "bench_common.h"

int main(int argc, char** argv) {
  const tamp::bench::BenchSpec spec = {
      "fig10_tasks_gowalla",
      "Fig. 10: effect of the number of spatial tasks (Gowalla-like)",
      tamp::bench::Experiment::kAssignmentSweep,
      tamp::data::WorkloadKind::kGowallaFoursquare,
      tamp::bench::SweepVar::kNumTasks,
      {300.0, 500.0, 700.0, 900.0, 1100.0}};
  return tamp::bench::BenchMain(spec, argc, argv);
}
