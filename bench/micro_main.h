#pragma once

#include "bench_common.h"

namespace tamp::bench {

/// Per-target hook of the shared micro-benchmark main (micro_main.cc):
/// every bench_micro_* translation unit defines it. Implementations record
/// the target's *deterministic* accounting metrics (work counts, reduction
/// ratios — never wall-clock) into the report so tools/bench_compare can
/// gate on them; targets with nothing deterministic to report define it
/// empty.
void RegisterMicroMetrics(JsonReport& report);

}  // namespace tamp::bench
