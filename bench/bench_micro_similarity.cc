// Micro-benchmarks of the three learning-task similarity factors that
// drive GTMC clustering (Eqs. 1-3), including the sliced-vs-exact
// Wasserstein trade-off.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "similarity/kernel.h"
#include "similarity/learning_path.h"
#include "similarity/wasserstein.h"

namespace {

std::vector<tamp::geo::Point> RandomCloud(int n, uint64_t seed) {
  tamp::Rng rng(seed);
  std::vector<tamp::geo::Point> cloud;
  for (int i = 0; i < n; ++i) {
    cloud.push_back({rng.Uniform(0, 20), rng.Uniform(0, 10)});
  }
  return cloud;
}

void BM_SlicedWasserstein(benchmark::State& state) {
  auto a = RandomCloud(static_cast<int>(state.range(0)), 1);
  auto b = RandomCloud(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    double w = tamp::similarity::SlicedWasserstein2D(a, b, 8);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_SlicedWasserstein)->Arg(32)->Arg(128)->Arg(512);

void BM_ExactWasserstein(benchmark::State& state) {
  auto a = RandomCloud(static_cast<int>(state.range(0)), 1);
  auto b = RandomCloud(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    double w = tamp::similarity::ExactWasserstein2D(a, b);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_ExactWasserstein)->Arg(32)->Arg(64)->Arg(128);

void BM_SpatialKernelSimilarity(benchmark::State& state) {
  tamp::Rng rng(3);
  tamp::geo::PoiSequence a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.emplace_back(rng.Uniform(0, 20), rng.Uniform(0, 10),
                   static_cast<int>(rng.UniformInt(0, 5)));
    b.emplace_back(rng.Uniform(0, 20), rng.Uniform(0, 10),
                   static_cast<int>(rng.UniformInt(0, 5)));
  }
  tamp::similarity::SpatialKernelParams params;
  for (auto _ : state) {
    double s = tamp::similarity::SpatialSimilarity(a, b, params);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SpatialKernelSimilarity)->Arg(8)->Arg(32)->Arg(128);

void BM_LearningPathSimilarity(benchmark::State& state) {
  tamp::Rng rng(5);
  tamp::similarity::GradientPath a, b;
  for (int step = 0; step < 3; ++step) {
    std::vector<double> ga(state.range(0)), gb(state.range(0));
    for (auto& v : ga) v = rng.Normal();
    for (auto& v : gb) v = rng.Normal();
    a.push_back(std::move(ga));
    b.push_back(std::move(gb));
  }
  for (auto _ : state) {
    double s = tamp::similarity::LearningPathSimilarity(a, b);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LearningPathSimilarity)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

#include "micro_main.h"

namespace tamp::bench {

// Timing-only target: no deterministic accounting metrics to gate on.
void RegisterMicroMetrics(JsonReport&) {}

}  // namespace tamp::bench
