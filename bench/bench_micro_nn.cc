// Micro-benchmarks of the LSTM encoder-decoder: forward inference (what
// every online batch pays per worker), the training step (what meta-
// training pays per sample), and the fleet-wide forecast rollout — the
// per-worker scalar chain against the batched SoA engine
// (nn::BatchedSeq2Seq), with distinct per-worker parameters (batched
// GEMV tiles) and a shared parameter vector (true GEMM tiles).
// RegisterMicroMetrics records the deterministic nn.* work counts that
// tools/bench_compare gates on.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/rng.h"
#include "core/rollout.h"
#include "geo/grid.h"
#include "nn/batched_seq2seq.h"
#include "nn/encoder_decoder.h"

namespace {

constexpr int kSeqIn = 5;
constexpr int kHorizonSteps = 5;
constexpr double kNowMin = 600.0;
constexpr double kPeriodMin = 10.0;
constexpr int kMaxFleet = 960;

tamp::nn::Sequence MakeInput(int seq_in, int dim) {
  tamp::nn::Sequence input;
  for (int t = 0; t < seq_in; ++t) {
    std::vector<double> step(dim, 0.1 * (t + 1));
    input.push_back(std::move(step));
  }
  return input;
}

/// A synthetic fleet on one dataset's grid: per-worker fine-tuned-style
/// parameter vectors (all distinct — the batched-GEMV regime), one shared
/// cluster-predictor vector (the GEMM regime), and short random-walk
/// observation windows. The NN cost is independent of trajectory realism,
/// so cheap walks keep the fixture fast while the grid extents and the
/// Table-III model shape match the dataset configuration.
struct Fleet {
  tamp::nn::Seq2SeqConfig config;
  tamp::geo::GridSpec grid;
  std::vector<std::vector<double>> worker_params;
  std::vector<double> shared_params;
  std::vector<std::vector<tamp::geo::Point>> recents;
};

Fleet* MakeFleet(const tamp::geo::GridSpec& grid, uint64_t seed) {
  auto* fleet = new Fleet{{}, grid, {}, {}, {}};
  fleet->config.input_dim = 3;
  fleet->config.hidden_dim = 16;
  fleet->config.output_dim = 2;
  fleet->config.seq_out = 1;
  tamp::Rng rng(seed);
  tamp::nn::EncoderDecoder model(fleet->config);
  fleet->shared_params = model.InitParams(rng);
  fleet->worker_params.reserve(kMaxFleet);
  fleet->recents.reserve(kMaxFleet);
  for (int w = 0; w < kMaxFleet; ++w) {
    fleet->worker_params.push_back(model.InitParams(rng));
    std::vector<tamp::geo::Point> walk;
    tamp::geo::Point p{rng.Uniform(0.0, grid.width_km()),
                       rng.Uniform(0.0, grid.height_km())};
    for (int s = 0; s < kSeqIn; ++s) {
      p.x += rng.Uniform(-0.5, 0.5);
      p.y += rng.Uniform(-0.5, 0.5);
      walk.push_back(grid.Clamp(p));
    }
    fleet->recents.push_back(std::move(walk));
  }
  return fleet;
}

const Fleet& PortoFleet() {
  // Porto/Didi gridding (28 x 14 km, 50 x 100 cells — data/workload.cc).
  static const Fleet* fleet =
      MakeFleet(tamp::geo::GridSpec(28.0, 14.0, 50, 100), 20250809);
  return *fleet;
}

const Fleet& GowallaFleet() {
  // Gowalla/Foursquare gridding (36 x 36 km, 60 x 60 cells).
  static const Fleet* fleet =
      MakeFleet(tamp::geo::GridSpec(36.0, 36.0, 60, 60), 20250810);
  return *fleet;
}

/// The scalar reference: one RolloutPredict chain per worker (the
/// simulator's per-worker fan-out body), with the reusable PredictScratch.
size_t FleetRolloutScalar(const Fleet& fleet, size_t fleet_size) {
  tamp::nn::EncoderDecoder model(fleet.config);
  tamp::nn::PredictScratch scratch;
  size_t points = 0;
  for (size_t w = 0; w < fleet_size; ++w) {
    points += tamp::core::RolloutPredict(model, fleet.worker_params[w],
                                         fleet.recents[w], fleet.grid,
                                         kHorizonSteps, kNowMin, kPeriodMin,
                                         &scratch)
                  .size();
  }
  return points;
}

/// The batched path: one fleet-wide SoA rollout. `shared` selects the
/// cluster-predictor regime where every row aliases one parameter vector.
size_t FleetRolloutBatched(const Fleet& fleet, size_t fleet_size, bool shared,
                           tamp::core::FleetForecastScratch& scratch,
                           std::vector<std::vector<tamp::geo::TimedPoint>>&
                               out) {
  tamp::nn::BatchedSeq2Seq engine(fleet.config);
  std::vector<const std::vector<double>*> row_params(fleet_size);
  std::vector<std::vector<tamp::geo::Point>> recents(
      fleet.recents.begin(),
      fleet.recents.begin() + static_cast<std::ptrdiff_t>(fleet_size));
  for (size_t w = 0; w < fleet_size; ++w) {
    row_params[w] = shared ? &fleet.shared_params : &fleet.worker_params[w];
  }
  tamp::core::RolloutPredictBatch(engine, row_params, recents, fleet.grid,
                                  kHorizonSteps, kNowMin, kPeriodMin, scratch,
                                  &out);
  size_t points = 0;
  for (const auto& row : out) points += row.size();
  return points;
}

void BM_EncoderDecoderPredict(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  config.hidden_dim = static_cast<int>(state.range(0));
  tamp::Rng rng(3);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(5, 3);
  for (auto _ : state) {
    auto pred = model.Predict(params, input);
    benchmark::DoNotOptimize(pred[0][0]);
  }
}
BENCHMARK(BM_EncoderDecoderPredict)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EncoderDecoderTrainStep(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  config.hidden_dim = static_cast<int>(state.range(0));
  tamp::Rng rng(5);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(5, 3);
  tamp::nn::Sequence target = {{0.5, 0.5}};
  std::vector<double> grad(params.size(), 0.0);
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double loss = model.LossAndGradient(params, input, target, {}, grad);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_EncoderDecoderTrainStep)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PredictBySeqIn(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  tamp::Rng rng(7);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto pred = model.Predict(params, input);
    benchmark::DoNotOptimize(pred[0][0]);
  }
}
BENCHMARK(BM_PredictBySeqIn)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

void FleetScalarBench(benchmark::State& state, const Fleet& fleet) {
  const size_t fleet_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FleetRolloutScalar(fleet, fleet_size));
  }
}

void FleetBatchedBench(benchmark::State& state, const Fleet& fleet,
                       bool shared) {
  const size_t fleet_size = static_cast<size_t>(state.range(0));
  tamp::core::FleetForecastScratch scratch;  // Persists across iterations.
  std::vector<std::vector<tamp::geo::TimedPoint>> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FleetRolloutBatched(fleet, fleet_size, shared, scratch, out));
  }
}

void BM_FleetRolloutScalarPorto(benchmark::State& state) {
  FleetScalarBench(state, PortoFleet());
}
BENCHMARK(BM_FleetRolloutScalarPorto)->Arg(60)->Arg(240)->Arg(960);

void BM_FleetRolloutBatchedPorto(benchmark::State& state) {
  FleetBatchedBench(state, PortoFleet(), /*shared=*/false);
}
BENCHMARK(BM_FleetRolloutBatchedPorto)->Arg(60)->Arg(240)->Arg(960);

void BM_FleetRolloutBatchedSharedPorto(benchmark::State& state) {
  FleetBatchedBench(state, PortoFleet(), /*shared=*/true);
}
BENCHMARK(BM_FleetRolloutBatchedSharedPorto)->Arg(60)->Arg(240)->Arg(960);

void BM_FleetRolloutScalarGowalla(benchmark::State& state) {
  FleetScalarBench(state, GowallaFleet());
}
BENCHMARK(BM_FleetRolloutScalarGowalla)->Arg(60)->Arg(240)->Arg(960);

void BM_FleetRolloutBatchedGowalla(benchmark::State& state) {
  FleetBatchedBench(state, GowallaFleet(), /*shared=*/false);
}
BENCHMARK(BM_FleetRolloutBatchedGowalla)->Arg(60)->Arg(240)->Arg(960);

void BM_FleetRolloutBatchedSharedGowalla(benchmark::State& state) {
  FleetBatchedBench(state, GowallaFleet(), /*shared=*/true);
}
BENCHMARK(BM_FleetRolloutBatchedSharedGowalla)->Arg(60)->Arg(240)->Arg(960);

}  // namespace

#include "micro_main.h"

namespace tamp::bench {

void RegisterMicroMetrics(JsonReport& report) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& cells = registry.GetCounter("nn.forecast_cells");
  obs::Counter& gemm = registry.GetCounter("nn.batched_gemm_calls");
  obs::Counter& rows = registry.GetCounter("nn.batch_rows");

  struct Dataset {
    const char* name;
    const Fleet& fleet;
  };
  const Dataset datasets[] = {{"porto", PortoFleet()},
                              {"gowalla", GowallaFleet()}};
  const size_t fleet_sizes[] = {60, 240, 960};

  core::FleetForecastScratch scratch;
  std::vector<std::vector<geo::TimedPoint>> out;
  for (const Dataset& ds : datasets) {
    for (size_t fleet_size : fleet_sizes) {
      // The scalar path runs one LstmCell::Forward per (row, cell step):
      // ceil(horizon / seq_out) engine passes of (seq_in + seq_out) steps.
      const auto& cfg = ds.fleet.config;
      const int64_t outer =
          (kHorizonSteps + cfg.seq_out - 1) / cfg.seq_out;
      const int64_t scalar_cell_calls =
          static_cast<int64_t>(fleet_size) * outer *
          (kSeqIn + cfg.seq_out);

      const int64_t cells_before = cells.value();
      const int64_t gemm_before = gemm.value();
      const int64_t rows_before = rows.value();
      (void)FleetRolloutBatched(ds.fleet, fleet_size, /*shared=*/false,
                                scratch, out);
      const int64_t batched_cells = cells.value() - cells_before;
      const int64_t batched_gemm = gemm.value() - gemm_before;
      const int64_t batched_rows = rows.value() - rows_before;

      const int64_t shared_gemm_before = gemm.value();
      (void)FleetRolloutBatched(ds.fleet, fleet_size, /*shared=*/true,
                                scratch, out);
      const int64_t shared_gemm = gemm.value() - shared_gemm_before;

      // The tentpole's contract: same per-row cell work, strictly fewer
      // kernel launches than the scalar path's per-worker cell calls.
      TAMP_CHECK(batched_cells == scalar_cell_calls);
      TAMP_CHECK(batched_gemm < scalar_cell_calls);
      TAMP_CHECK(shared_gemm < scalar_cell_calls);

      const std::string prefix =
          std::string("nn.") + ds.name + ".w" + std::to_string(fleet_size);
      report.AddMetric(prefix + ".scalar_cell_calls",
                       static_cast<double>(scalar_cell_calls));
      report.AddMetric(prefix + ".forecast_cells",
                       static_cast<double>(batched_cells));
      report.AddMetric(prefix + ".batched_gemm_calls",
                       static_cast<double>(batched_gemm));
      report.AddMetric(prefix + ".shared_gemm_calls",
                       static_cast<double>(shared_gemm));
      report.AddMetric(prefix + ".batch_rows",
                       static_cast<double>(batched_rows));
    }
  }
}

}  // namespace tamp::bench
