// Micro-benchmarks of the LSTM encoder-decoder: forward inference (what
// every online batch pays per worker) and the training step (what meta-
// training pays per sample).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/encoder_decoder.h"

namespace {

tamp::nn::Sequence MakeInput(int seq_in, int dim) {
  tamp::nn::Sequence input;
  for (int t = 0; t < seq_in; ++t) {
    std::vector<double> step(dim, 0.1 * (t + 1));
    input.push_back(std::move(step));
  }
  return input;
}

void BM_EncoderDecoderPredict(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  config.hidden_dim = static_cast<int>(state.range(0));
  tamp::Rng rng(3);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(5, 3);
  for (auto _ : state) {
    auto pred = model.Predict(params, input);
    benchmark::DoNotOptimize(pred[0][0]);
  }
}
BENCHMARK(BM_EncoderDecoderPredict)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EncoderDecoderTrainStep(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  config.hidden_dim = static_cast<int>(state.range(0));
  tamp::Rng rng(5);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(5, 3);
  tamp::nn::Sequence target = {{0.5, 0.5}};
  std::vector<double> grad(params.size(), 0.0);
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double loss = model.LossAndGradient(params, input, target, {}, grad);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_EncoderDecoderTrainStep)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PredictBySeqIn(benchmark::State& state) {
  tamp::nn::Seq2SeqConfig config;
  config.input_dim = 3;
  tamp::Rng rng(7);
  tamp::nn::EncoderDecoder model(config);
  auto params = model.InitParams(rng);
  auto input = MakeInput(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto pred = model.Predict(params, input);
    benchmark::DoNotOptimize(pred[0][0]);
  }
}
BENCHMARK(BM_PredictBySeqIn)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

#include "micro_main.h"

namespace tamp::bench {

// Timing-only target: no deterministic accounting metrics to gate on.
void RegisterMicroMetrics(JsonReport&) {}

}  // namespace tamp::bench
