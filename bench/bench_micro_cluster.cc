// Micro-benchmarks of the clustering stack: k-medoids initialization and
// the best-response game refinement (Algorithm 1's two phases).
#include <benchmark/benchmark.h>

#include "cluster/game_clustering.h"
#include "cluster/kmedoids.h"
#include "common/rng.h"

namespace {

/// Random symmetric similarity with planted structure: two groups.
tamp::similarity::PairwiseSimilarity PlantedSimilarity(int n) {
  return tamp::similarity::PairwiseSimilarity(n, [n](int i, int j) {
    bool same = (i < n / 2) == (j < n / 2);
    // Deterministic pseudo-noise.
    double noise = 0.05 * (((i * 31 + j * 17) % 13) / 13.0);
    return (same ? 0.75 : 0.15) + noise;
  });
}

void BM_GameTheoreticCluster(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto sim = PlantedSimilarity(n);
  sim.Materialize();
  std::vector<int> items(n);
  for (int i = 0; i < n; ++i) items[i] = i;
  tamp::cluster::GameClusteringConfig config;
  config.k = 4;
  for (auto _ : state) {
    tamp::Rng rng(99);
    auto result = tamp::cluster::GameTheoreticCluster(sim, items, config, rng);
    benchmark::DoNotOptimize(result.clusters.size());
  }
}
BENCHMARK(BM_GameTheoreticCluster)->Arg(16)->Arg(64)->Arg(256);

void BM_KMedoidsOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto sim = PlantedSimilarity(n);
  sim.Materialize();
  std::vector<int> items(n);
  for (int i = 0; i < n; ++i) items[i] = i;
  tamp::cluster::GameClusteringConfig config;
  config.k = 4;
  for (auto _ : state) {
    tamp::Rng rng(99);
    auto result = tamp::cluster::KMedoidsCluster(sim, items, config, rng);
    benchmark::DoNotOptimize(result.clusters.size());
  }
}
BENCHMARK(BM_KMedoidsOnly)->Arg(16)->Arg(64)->Arg(256);

void BM_KMedoidsRaw(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto dist = [n](int i, int j) {
    bool same = (i < n / 2) == (j < n / 2);
    return same ? 1.0 + 0.01 * ((i + j) % 7) : 5.0;
  };
  for (auto _ : state) {
    tamp::Rng rng(5);
    auto result = tamp::cluster::KMedoids(n, 4, dist, rng);
    benchmark::DoNotOptimize(result.total_cost);
  }
}
BENCHMARK(BM_KMedoidsRaw)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

#include "micro_main.h"

namespace tamp::bench {

// Timing-only target: no deterministic accounting metrics to gate on.
void RegisterMicroMetrics(JsonReport&) {}

}  // namespace tamp::bench
