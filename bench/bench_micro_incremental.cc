// Micro-benchmarks of the batch-to-batch incremental assignment path: the
// delta-updated index + row cache (IncrementalCandidateEngine) against the
// cold per-batch CandidateIndex rebuild, and the warm-started KM solve
// against the cold solve. RegisterMicroMetrics records the deterministic
// work counts (evaluations, cache hits, index delta ops, warm rounds) that
// tools/bench_compare gates on.
#include <benchmark/benchmark.h>

#include <vector>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/incremental.h"
#include "assign/km_assigner.h"
#include "common/obs/metrics.h"
#include "data/workload.h"
#include "micro_main.h"

namespace {

using tamp::assign::AssignReuse;
using tamp::assign::CandidateGenStats;
using tamp::assign::CandidateIndex;
using tamp::assign::GenerateCandidates;
using tamp::assign::IncrementalCandidateEngine;

constexpr double kMatchRadiusKm = 1.0;

struct Batch {
  std::vector<tamp::assign::SpatialTask> tasks;
  std::vector<tamp::assign::CandidateWorker> workers;
  double now = 0.0;
};

/// A Porto batch *sequence* with worker churn: consecutive 2-minute
/// instants where each batch a different ~1/7 of the fleet is offline —
/// the regime the incremental engine's delta updates target.
const std::vector<Batch>& PortoSequence() {
  static const std::vector<Batch>* cached = [] {
    tamp::data::WorkloadConfig config;
    config.kind = tamp::data::WorkloadKind::kPortoDidi;
    config.num_workers = 200;
    config.num_train_days = 1;
    config.num_tasks = 2000;
    config.num_historical_tasks = 50;
    config.seed = 20250707;
    tamp::data::Workload workload = tamp::data::GenerateWorkload(config);

    auto* batches = new std::vector<Batch>();
    const double start =
        workload.task_stream[workload.task_stream.size() / 2]
            .release_time_min;
    for (int b = 0; b < 6; ++b) {
      Batch batch;
      batch.now = start + 2.0 * b;
      for (const tamp::assign::SpatialTask& task : workload.task_stream) {
        if (task.release_time_min <= batch.now + 60.0 &&
            task.deadline_min > batch.now) {
          batch.tasks.push_back(task);
        }
      }
      for (size_t w = 0; w < workload.workers.size(); ++w) {
        if ((static_cast<int>(w) + b) % 7 == 0) continue;  // Churn.
        const tamp::data::WorkerRecord& record = workload.workers[w];
        tamp::assign::CandidateWorker cw;
        cw.id = record.id;
        for (int s = 1; s <= 5; ++s) {
          const double t = batch.now + 10.0 * s;
          cw.predicted.push_back({record.test.PositionAt(t), t});
        }
        cw.current_location = record.test.PositionAt(batch.now);
        cw.detour_budget_km = record.detour_budget_km;
        cw.speed_kmpm = record.speed_kmpm;
        cw.matching_rate =
            0.2 + 0.6 * static_cast<double>(w) /
                      static_cast<double>(workload.workers.size());
        batch.workers.push_back(std::move(cw));
      }
      batches->push_back(std::move(batch));
    }
    return batches;
  }();
  return *cached;
}

void BM_ColdIndexedSequence(benchmark::State& state) {
  const std::vector<Batch>& batches = PortoSequence();
  for (auto _ : state) {
    size_t total = 0;
    for (const Batch& batch : batches) {
      CandidateIndex index(batch.workers);
      auto table = GenerateCandidates(batch.tasks, batch.workers,
                                      kMatchRadiusKm, batch.now, &index);
      total += table.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ColdIndexedSequence);

void BM_IncrementalFirstPass(benchmark::State& state) {
  const std::vector<Batch>& batches = PortoSequence();
  for (auto _ : state) {
    IncrementalCandidateEngine engine;  // Cold engine: no cache to hit.
    size_t total = 0;
    for (const Batch& batch : batches) {
      auto table = engine.BuildTable(batch.tasks, batch.workers,
                                     kMatchRadiusKm, batch.now);
      total += table.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_IncrementalFirstPass);

void BM_IncrementalReplay(benchmark::State& state) {
  const std::vector<Batch>& batches = PortoSequence();
  // Warmed once; every timed iteration replays the same instants against
  // the populated row cache (the sweep-bench regime where later methods
  // reuse the first method's rows).
  static IncrementalCandidateEngine* engine = [] {
    auto* e = new IncrementalCandidateEngine();
    for (const Batch& batch : PortoSequence()) {
      (void)e->BuildTable(batch.tasks, batch.workers, kMatchRadiusKm,
                          batch.now);
    }
    return e;
  }();
  for (auto _ : state) {
    size_t total = 0;
    for (const Batch& batch : batches) {
      auto table = engine->BuildTable(batch.tasks, batch.workers,
                                      kMatchRadiusKm, batch.now);
      total += table.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_IncrementalReplay);

void BM_KmAssignColdRepeat(benchmark::State& state) {
  const Batch& batch = PortoSequence().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tamp::assign::KmAssign(batch.tasks, batch.workers,
                                                    batch.now, kMatchRadiusKm)
                                 .pairs.size());
  }
}
BENCHMARK(BM_KmAssignColdRepeat);

void BM_KmAssignWarmRepeat(benchmark::State& state) {
  // Repeated solves of one instant through a persistent holder — the
  // replay regime (methods sharing a pipeline revisit the same batch):
  // after the first iteration the candidate rows all hit the cache and
  // the KM solve resumes from its final checkpoint.
  const Batch& batch = PortoSequence().front();
  static AssignReuse* reuse = [] {
    auto* r = new AssignReuse();
    const Batch& b = PortoSequence().front();
    (void)tamp::assign::KmAssign(b.tasks, b.workers, b.now, kMatchRadiusKm,
                                 1e-3, true, r);
    return r;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tamp::assign::KmAssign(batch.tasks, batch.workers, batch.now,
                               kMatchRadiusKm, 1e-3, true, reuse)
            .pairs.size());
  }
}
BENCHMARK(BM_KmAssignWarmRepeat);

}  // namespace

namespace tamp::bench {

void RegisterMicroMetrics(JsonReport& report) {
  const std::vector<Batch>& batches = PortoSequence();
  int64_t dense_pairs = 0, tasks = 0;
  CandidateGenStats cold;
  for (const Batch& batch : batches) {
    CandidateIndex index(batch.workers);
    GenerateCandidates(batch.tasks, batch.workers, kMatchRadiusKm, batch.now,
                       &index, &cold);
    dense_pairs += static_cast<int64_t>(batch.tasks.size()) *
                   static_cast<int64_t>(batch.workers.size());
    tasks += static_cast<int64_t>(batch.tasks.size());
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& delta_counter = registry.GetCounter("assign.index_delta_ops");
  obs::Counter& warm_counter = registry.GetCounter("assign.km_warm_rounds");

  IncrementalCandidateEngine engine;
  CandidateGenStats first, replay;
  const int64_t delta_before = delta_counter.value();
  for (const Batch& batch : batches) {
    (void)engine.BuildTable(batch.tasks, batch.workers, kMatchRadiusKm,
                            batch.now, &first);
  }
  const int64_t first_delta_ops = delta_counter.value() - delta_before;
  for (const Batch& batch : batches) {
    (void)engine.BuildTable(batch.tasks, batch.workers, kMatchRadiusKm,
                            batch.now, &replay);
  }
  const int64_t replay_delta_ops =
      delta_counter.value() - delta_before - first_delta_ops;

  // Warm-started KM: every batch solved twice through one holder. The
  // repeat's cost matrix is bitwise identical, so the solve resumes from
  // the final checkpoint — warm rounds count the skipped KM rows.
  AssignReuse reuse;
  const int64_t warm_before = warm_counter.value();
  for (const Batch& batch : batches) {
    for (int pass = 0; pass < 2; ++pass) {
      (void)assign::KmAssign(batch.tasks, batch.workers, batch.now,
                             kMatchRadiusKm, 1e-3, true, &reuse);
    }
  }
  const int64_t warm_rounds = warm_counter.value() - warm_before;

  report.AddMetric("incremental.batches", static_cast<double>(batches.size()));
  report.AddMetric("incremental.tasks", static_cast<double>(tasks));
  report.AddMetric("incremental.dense_pairs",
                   static_cast<double>(dense_pairs));
  report.AddMetric("incremental.cold_indexed_evals",
                   static_cast<double>(cold.evaluated));
  // First pass: the exact per-worker Theorem-2 filter (no match-radius
  // slack) evaluates strictly less than the cold batch-max prune.
  report.AddMetric("incremental.first_pass_evals",
                   static_cast<double>(first.evaluated));
  report.AddMetric("incremental.first_pass_cache_hits",
                   static_cast<double>(first.cache_hits));
  report.AddMetric("incremental.first_pass_delta_ops",
                   static_cast<double>(first_delta_ops));
  // Replay: identical instants, identical geometry — every prior
  // evaluation must come back as a cache hit, with zero index mutations.
  report.AddMetric("incremental.replay_evals",
                   static_cast<double>(replay.evaluated));
  report.AddMetric("incremental.replay_cache_hits",
                   static_cast<double>(replay.cache_hits));
  report.AddMetric("incremental.replay_delta_ops",
                   static_cast<double>(replay_delta_ops));
  report.AddMetric("incremental.eval_reduction_x",
                   static_cast<double>(cold.evaluated) /
                       static_cast<double>(first.evaluated));
  report.AddMetric("incremental.km_warm_rounds",
                   static_cast<double>(warm_rounds));
}

}  // namespace tamp::bench
