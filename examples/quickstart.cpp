// Quickstart: the full TAMP loop in ~50 lines.
//
// 1. Generate a synthetic Porto-like workload (workers + task stream).
// 2. Offline stage: GTTAML meta-training with the task-assignment-oriented
//    loss, then per-worker fine-tuning and matching-rate estimation.
// 3. Online stage: replay the day in 2-minute batches with the PPI
//    assignment algorithm.
//
// Accepts the shared run flags (core::RunFlagsHelp): try
//   quickstart --trace=quickstart_trace.json
// and load the file in a chrome://tracing / Perfetto viewer.
#include <iostream>

#include "common/table_printer.h"
#include "core/pipeline.h"
#include "core/run_options.h"
#include "data/workload.h"

int main(int argc, char** argv) {
  using namespace tamp;

  core::RunOptions options;
  options.seed = 1;  // The example's default workload seed.
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "quickstart: the full TAMP loop\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "quickstart: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);

  // A small workload so the example finishes in seconds.
  data::WorkloadConfig workload_config;
  workload_config.kind = options.workload.kind;
  workload_config.scenario = options.workload.scenario;
  workload_config.num_workers = 12;
  workload_config.num_train_days = 3;
  workload_config.num_tasks = 300;
  workload_config.seed = options.seed;
  data::Workload workload = data::GenerateWorkload(workload_config);
  std::cout << "Generated " << workload.workers.size() << " workers and "
            << workload.task_stream.size() << " tasks on a "
            << workload.grid.width_km() << "x" << workload.grid.height_km()
            << " km map.\n";

  // Offline: cluster learning tasks with GTMC, meta-train with TAML,
  // fine-tune per worker, estimate matching rates.
  core::PipelineConfig config;
  config.meta_algorithm = meta::MetaAlgorithm::kGttaml;
  config.use_ta_loss = true;
  config.trainer.meta.iterations = 15;
  config.trainer.fine_tune_steps = 30;
  config.sim = options.sim;
  core::TampPipeline pipeline(config);
  core::OfflineResult offline = pipeline.TrainOffline(workload);
  std::cout << "Offline stage: " << offline.models.num_leaves
            << " leaf clusters, RMSE "
            << Fmt(offline.eval.aggregate.rmse_km, 2) << " km, matching rate "
            << Fmt(offline.eval.aggregate.matching_rate, 3) << " (trained in "
            << Fmt(offline.models.train_seconds, 1) << "s).\n";

  // Online: batch assignment with PPI.
  core::SimMetrics metrics =
      pipeline.RunOnline(workload, offline, core::AssignMethod::kPpi);
  std::cout << "Online stage (PPI): completed " << metrics.completed << "/"
            << metrics.total_tasks << " tasks (ratio "
            << Fmt(metrics.CompletionRatio(), 3) << "), rejection ratio "
            << Fmt(metrics.RejectionRatio(), 3) << ", average worker detour "
            << Fmt(metrics.AvgCostKm(), 2) << " km.\n";

  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "quickstart: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
