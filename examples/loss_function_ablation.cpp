// The task-assignment-oriented loss (Eqs. 6-7) made concrete:
//  1. Show the weighted function f_w across the map: high where historical
//     tasks cluster, delta elsewhere.
//  2. Train the same model under plain MSE and under the weighted loss and
//     compare prediction error *near tasks* vs *away from tasks*.
//
// Accepts the shared run flags (core::RunFlagsHelp), e.g.
//   loss_function_ablation --dataset=gowalla --seed=56
#include <iostream>

#include "common/table_printer.h"
#include "core/pipeline.h"
#include "core/run_options.h"
#include "core/ta_loss.h"
#include "data/workload.h"

int main(int argc, char** argv) {
  using namespace tamp;

  core::RunOptions options;
  options.seed = 55;  // The example's default workload seed.
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "loss_function_ablation: the task-assignment-oriented loss "
                 "vs plain MSE\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "loss_function_ablation: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);

  data::WorkloadConfig workload_config;
  workload_config.kind = options.workload.kind;
  workload_config.scenario = options.workload.scenario;
  workload_config.num_workers = 14;
  workload_config.num_train_days = 3;
  workload_config.num_tasks = 200;
  workload_config.num_historical_tasks = 2000;
  workload_config.seed = options.seed;
  data::Workload workload = data::GenerateWorkload(workload_config);

  // --- Part 1: the weight field. ---
  core::TaLossParams params;
  core::TaskOrientedWeighter weighter(
      workload.grid, workload.historical_task_locations, params);
  std::cout << "f_w along the map's horizontal midline (kappa=" << params.kappa
            << ", delta=" << params.delta << ", d^q=" << params.dq_km
            << " km):\n  ";
  double y = workload.grid.height_km() / 2.0;
  for (double x = 1.0; x < workload.grid.width_km(); x += 2.0) {
    std::cout << Fmt(weighter.Weight({x, y}), 1) << " ";
  }
  std::cout << "\n(values >> " << params.delta
            << " mark task hotspots the loss emphasizes)\n\n";

  // --- Part 2: trained-model comparison. ---
  auto train = [&](bool use_ta_loss) {
    core::PipelineConfig config;
    config.meta_algorithm = meta::MetaAlgorithm::kGttaml;
    config.use_ta_loss = use_ta_loss;
    config.trainer.meta.iterations = 15;
    config.trainer.fine_tune_steps = 40;
    config.sim = options.sim;
    core::TampPipeline pipeline(config);
    return pipeline.TrainOffline(workload);
  };
  std::cout << "Training with the task-assignment-oriented loss...\n";
  core::OfflineResult ta = train(true);
  std::cout << "Training with plain MSE...\n";
  core::OfflineResult mse = train(false);

  // Error split by whether the true location is task-dense (f_w above the
  // midpoint weight) or sparse.
  nn::EncoderDecoder model(ta.models.model_config);
  auto split_rmse = [&](const core::OfflineResult& result) {
    double dense_se = 0.0, sparse_se = 0.0;
    int dense_n = 0, sparse_n = 0;
    for (size_t w = 0; w < workload.learning_tasks.size(); ++w) {
      for (const auto& sample : workload.learning_tasks[w].eval) {
        nn::Sequence pred =
            model.Predict(result.models.worker_params[w], sample.input);
        for (size_t t = 0; t < pred.size(); ++t) {
          geo::Point pred_km =
              workload.grid.Denormalize({pred[t][0], pred[t][1]});
          double d = geo::Distance(pred_km, sample.target_km[t]);
          if (weighter.Weight(sample.target_km[t]) > 1.0) {
            dense_se += d * d;
            ++dense_n;
          } else {
            sparse_se += d * d;
            ++sparse_n;
          }
        }
      }
    }
    return std::pair<double, double>{
        dense_n > 0 ? std::sqrt(dense_se / dense_n) : 0.0,
        sparse_n > 0 ? std::sqrt(sparse_se / sparse_n) : 0.0};
  };
  auto [ta_dense, ta_sparse] = split_rmse(ta);
  auto [mse_dense, mse_sparse] = split_rmse(mse);

  TablePrinter table({"loss", "RMSE near tasks (km)", "RMSE elsewhere (km)",
                      "overall MR"});
  table.AddRow({"task-assignment-oriented (Eq. 6-7)", Fmt(ta_dense, 3),
                Fmt(ta_sparse, 3), Fmt(ta.eval.aggregate.matching_rate, 3)});
  table.AddRow({"plain MSE", Fmt(mse_dense, 3), Fmt(mse_sparse, 3),
                Fmt(mse.eval.aggregate.matching_rate, 3)});
  table.Print(std::cout);
  std::cout << "\nThe weighted loss shifts accuracy toward task-dense areas "
               "— exactly where assignment decisions happen.\n";

  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "loss_function_ablation: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
