// Cold-start scenario (Challenge I): a newcomer joins the platform with a
// single day of history. Compare initializing their mobility model from
// (a) the most similar learning-task-tree node (the paper's newcomer
// strategy) against (b) a fresh random initialization, after the same
// small number of fine-tuning steps.
//
// Accepts the shared run flags (core::RunFlagsHelp), e.g.
//   newcomer_onboarding --threads=4 --metrics=newcomer_metrics.json
#include <iostream>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/run_options.h"
#include "data/workload.h"
#include "meta/meta_training.h"
#include "meta/trainer.h"

int main(int argc, char** argv) {
  using namespace tamp;

  core::RunOptions options;
  options.seed = 31;  // The example's default workload seed.
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "newcomer_onboarding: few-shot cold start from the "
                 "learning-task tree\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "newcomer_onboarding: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);

  // Veterans: full history. One extra worker plays the newcomer.
  data::WorkloadConfig workload_config;
  workload_config.kind = options.workload.kind;
  workload_config.scenario = options.workload.scenario;
  workload_config.num_workers = 17;
  workload_config.num_train_days = 4;
  workload_config.newcomer_fraction = 0.06;  // Exactly one newcomer.
  workload_config.num_tasks = 100;
  workload_config.seed = options.seed;
  data::Workload workload = data::GenerateWorkload(workload_config);

  // Separate the newcomer from the veterans.
  meta::LearningTask newcomer = workload.learning_tasks.front();
  std::vector<meta::LearningTask> veterans(
      workload.learning_tasks.begin() + 1, workload.learning_tasks.end());
  std::cout << "Veterans: " << veterans.size() << " workers with "
            << workload_config.num_train_days << " days of history.\n"
            << "Newcomer: worker " << newcomer.worker_id << " with "
            << newcomer.support.size() + newcomer.query.size()
            << " training samples from a single day.\n\n";

  meta::TrainerConfig trainer_config;
  trainer_config.model.input_dim = data::kSampleInputDim;
  trainer_config.meta.iterations = 20;
  trainer_config.fine_tune_steps = 10;  // Few-shot: the newcomer regime.
  trainer_config.seed = 7;
  meta::MobilityTrainer trainer(trainer_config);

  std::cout << "Meta-training GTTAML on the veterans...\n";
  meta::TrainedModels models =
      trainer.Train(veterans, meta::MetaAlgorithm::kGttaml);
  std::cout << "  learning task tree: " << models.num_leaves << " leaves.\n\n";

  // (a) The paper's strategy: init from the most similar tree node.
  std::vector<double> tree_params =
      trainer.AdaptNewcomer(models, veterans, newcomer);

  // (b) Baseline: random init + identical fine-tuning budget.
  Rng rng(123);
  std::vector<double> scratch_params = trainer.model().InitParams(rng);
  meta::FineTune(trainer.model(), newcomer, scratch_params,
                 trainer_config.fine_tune_steps, trainer_config.fine_tune_lr,
                 trainer_config.meta);

  // Evaluate both on the newcomer's held-out day.
  auto evaluate = [&](const std::vector<double>& params) {
    double se = 0.0, matched = 0.0;
    int points = 0;
    for (const auto& sample : newcomer.eval) {
      nn::Sequence pred = trainer.model().Predict(params, sample.input);
      for (size_t t = 0; t < pred.size(); ++t) {
        geo::Point pred_km =
            workload.grid.Denormalize({pred[t][0], pred[t][1]});
        double d = geo::Distance(pred_km, sample.target_km[t]);
        se += d * d;
        if (d <= 1.0) matched += 1.0;
        ++points;
      }
    }
    return std::pair<double, double>{std::sqrt(se / points),
                                     matched / points};
  };
  auto [tree_rmse, tree_mr] = evaluate(tree_params);
  auto [scratch_rmse, scratch_mr] = evaluate(scratch_params);

  TablePrinter table({"initialization", "RMSE (km)", "MR @1km"});
  table.AddRow({"most-similar tree node (paper)", Fmt(tree_rmse, 3),
                Fmt(tree_mr, 3)});
  table.AddRow({"random init + same fine-tuning", Fmt(scratch_rmse, 3),
                Fmt(scratch_mr, 3)});
  table.Print(std::cout);
  std::cout << "\nThe tree initialization transfers the mobility patterns of "
               "the newcomer's most similar cluster, which is what makes "
               "few-shot onboarding work.\n";

  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "newcomer_onboarding: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
