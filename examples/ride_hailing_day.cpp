// Ride-hailing scenario: a full simulated day on the Porto-like workload,
// comparing every assignment strategy on the same trained models — the
// comparison behind the intro's motivating application (taxi drivers
// performing check-in-style tasks along their shifts).
//
// Accepts the shared run flags (core::RunFlagsHelp), e.g.
//   ride_hailing_day --methods=KM,PPI --trace=day_trace.json
#include <iostream>

#include "common/table_printer.h"
#include "core/pipeline.h"
#include "core/run_options.h"
#include "data/workload.h"

int main(int argc, char** argv) {
  using namespace tamp;

  core::RunOptions options;
  options.seed = 99;  // The example's default workload seed.
  Status status = core::ParseRunFlags(argc, argv, &options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    std::cout << "ride_hailing_day: one simulated day, every assignment "
                 "strategy\n\nflags:\n"
              << status.message();
    return 0;
  }
  if (status.ok()) status = options.Validate();
  if (!status.ok()) {
    std::cerr << "ride_hailing_day: " << status.ToString() << "\n";
    return 1;
  }
  core::ApplyRunOptions(options);

  data::WorkloadConfig workload_config;
  workload_config.kind = options.workload.kind;
  workload_config.scenario = options.workload.scenario;
  workload_config.num_workers = 20;
  workload_config.num_train_days = 3;
  workload_config.num_tasks = 500;
  workload_config.detour_budget_km = 4.0;
  workload_config.seed = options.seed;
  data::Workload workload = data::GenerateWorkload(workload_config);

  core::PipelineConfig config;
  config.meta_algorithm = meta::MetaAlgorithm::kGttaml;
  config.use_ta_loss = true;
  config.trainer.meta.iterations = 20;
  config.trainer.fine_tune_steps = 40;
  config.sim = options.sim;
  core::TampPipeline pipeline(config);

  std::cout << "Training per-worker mobility models (GTTAML + "
               "task-assignment-oriented loss)...\n";
  core::OfflineResult offline = pipeline.TrainOffline(workload);
  std::cout << "  " << offline.models.num_leaves << " clusters, aggregate MR "
            << Fmt(offline.eval.aggregate.matching_rate, 3) << "\n";

  // Show the per-worker matching-rate spread: PPI prioritizes assignments
  // to the predictable end of this distribution.
  double min_mr = 1.0, max_mr = 0.0;
  for (const auto& pm : offline.eval.per_worker) {
    min_mr = std::min(min_mr, pm.matching_rate);
    max_mr = std::max(max_mr, pm.matching_rate);
  }
  std::cout << "  per-worker matching rate spread: ["
            << Fmt(min_mr, 3) << ", " << Fmt(max_mr, 3) << "]\n\n";

  TablePrinter table({"method", "completed", "completion", "rejection",
                      "avg detour (km)", "assign time (s)"});
  for (core::AssignMethod method : core::EffectiveMethods(options)) {
    core::SimMetrics metrics = pipeline.RunOnline(workload, offline, method);
    table.AddRow({std::string(core::AssignMethodName(method)),
                  Fmt(static_cast<int64_t>(metrics.completed)),
                  Fmt(metrics.CompletionRatio(), 3),
                  Fmt(metrics.RejectionRatio(), 3),
                  Fmt(metrics.AvgCostKm(), 2),
                  Fmt(metrics.assign_seconds, 3)});
  }
  std::cout << "One simulated day, " << workload.task_stream.size()
            << " tasks, " << workload.workers.size() << " part-time drivers:\n";
  table.Print(std::cout);
  std::cout << "\nUB sees real trajectories (oracle); LB only current "
               "locations; KM/PPI use the predicted routines; PPI "
               "additionally weighs prediction confidence (Theorem 2).\n";

  status = core::WriteRunArtifacts(options);
  if (!status.ok()) {
    std::cerr << "ride_hailing_day: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
