# Sanitizer and warning-hardening knobs for the TAMP build.
#
#   -DTAMP_SANITIZE=address|undefined|thread|leak|address,undefined
#       Builds every target with the given sanitizer(s). address and
#       undefined compose; thread excludes address/leak (toolchain rule).
#   -DTAMP_WERROR=ON
#       Promotes all warnings to errors (CI / pre-merge runs).
#   -DTAMP_EXTRA_WARNINGS=ON (default)
#       Hardened warning set beyond -Wall -Wextra.
#
# Usage from the root CMakeLists.txt:
#   include(cmake/Sanitizers.cmake)
#   tamp_enable_sanitizers()   # after project(), before add_subdirectory()

set(TAMP_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to enable: address, undefined, thread, leak")
option(TAMP_WERROR "Treat warnings as errors" OFF)
option(TAMP_EXTRA_WARNINGS "Enable the hardened warning set" ON)

function(tamp_enable_sanitizers)
  if(TAMP_SANITIZE STREQUAL "")
    return()
  endif()

  string(REPLACE "," ";" _tamp_san_list "${TAMP_SANITIZE}")
  set(_tamp_san_flags "")
  set(_has_thread FALSE)
  set(_has_addr_or_leak FALSE)

  foreach(_san IN LISTS _tamp_san_list)
    string(STRIP "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _tamp_san_flags "-fsanitize=address")
      set(_has_addr_or_leak TRUE)
    elseif(_san STREQUAL "undefined")
      list(APPEND _tamp_san_flags "-fsanitize=undefined")
    elseif(_san STREQUAL "thread")
      list(APPEND _tamp_san_flags "-fsanitize=thread")
      set(_has_thread TRUE)
    elseif(_san STREQUAL "leak")
      list(APPEND _tamp_san_flags "-fsanitize=leak")
      set(_has_addr_or_leak TRUE)
    else()
      message(FATAL_ERROR
        "TAMP_SANITIZE: unknown sanitizer '${_san}' "
        "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if(_has_thread AND _has_addr_or_leak)
    message(FATAL_ERROR
      "TAMP_SANITIZE: thread cannot be combined with address/leak")
  endif()

  # Sane stacks in sanitizer reports; halt on the first UB diagnostic so
  # ctest fails instead of scrolling past it.
  list(APPEND _tamp_san_flags "-fno-omit-frame-pointer")
  if("-fsanitize=undefined" IN_LIST _tamp_san_flags)
    list(APPEND _tamp_san_flags "-fno-sanitize-recover=undefined")
  endif()

  add_compile_options(${_tamp_san_flags})
  add_link_options(${_tamp_san_flags})
  message(STATUS "TAMP: building with sanitizers: ${TAMP_SANITIZE}")
endfunction()

function(tamp_enable_warnings)
  if(TAMP_EXTRA_WARNINGS)
    add_compile_options(
      -Wpedantic
      -Wshadow
      -Wconversion
      -Wsign-conversion
      -Wdouble-promotion
      -Wold-style-cast
    )
  endif()
  if(TAMP_WERROR)
    add_compile_options(-Werror)
  endif()
endfunction()
